"""The generalized provisioning problem of Section 5.1: pick the right box.

Instead of a single storage system, the data-centre operator has a set of
candidate *storage configurations* (each with its own classes, prices and
capacities) and wants the configuration *and* data layout that minimise the
TOC while meeting the SLA.  The paper solves this by running DOT once per
configuration and keeping the cheapest feasible recommendation; this module
does exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.advisor import ProvisioningAdvisor, Recommendation
from repro.exceptions import InfeasibleLayoutError
from repro.objects import DatabaseObject
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.storage.storage_class import StorageSystem


@dataclass(frozen=True)
class ProvisioningOption:
    """One candidate storage configuration ``f_i``."""

    name: str
    system: StorageSystem
    description: str = ""


@dataclass
class ProvisioningDecision:
    """Outcome of the generalized provisioning search."""

    chosen: Optional[ProvisioningOption]
    recommendation: Optional[Recommendation]
    per_option: Dict[str, Optional[Recommendation]] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def feasible(self) -> bool:
        """True if at least one configuration admitted a feasible layout."""
        return self.chosen is not None

    def describe(self) -> str:
        """Summary of the per-option TOCs and the chosen configuration."""
        lines = ["Generalized provisioning decision:"]
        for name, recommendation in self.per_option.items():
            if recommendation is None:
                lines.append(f"  {name}: infeasible")
            else:
                marker = " <== chosen" if self.chosen and name == self.chosen.name else ""
                lines.append(
                    f"  {name}: TOC {recommendation.toc_cents:.4f} cents "
                    f"({recommendation.measured_report.metric}){marker}"
                )
        return "\n".join(lines)


class GeneralizedProvisioner:
    """Chooses a storage configuration and layout by running DOT per option."""

    def __init__(self, objects: Sequence[DatabaseObject], estimator,
                 capacity_relaxed_walk: bool = True):
        self.objects = list(objects)
        self.estimator = estimator
        self.capacity_relaxed_walk = capacity_relaxed_walk

    def decide(
        self,
        workload,
        options: Sequence[ProvisioningOption],
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = None,
        profile_mode: str = "estimate",
    ) -> ProvisioningDecision:
        """Run the DOT pipeline for every option and keep the cheapest feasible one.

        A relative SLA is resolved independently per configuration against that
        configuration's own best-performing layout, matching how the paper
        expresses "x times slower than the best case" for whichever hardware
        is under consideration.
        """
        if not options:
            raise InfeasibleLayoutError("no provisioning options supplied")
        started = time.perf_counter()
        per_option: Dict[str, Optional[Recommendation]] = {}
        best_option: Optional[ProvisioningOption] = None
        best_recommendation: Optional[Recommendation] = None

        for option in options:
            advisor = ProvisioningAdvisor(
                self.objects,
                option.system,
                self.estimator,
                capacity_relaxed_walk=self.capacity_relaxed_walk,
            )
            try:
                recommendation = advisor.recommend(workload, sla=sla, profile_mode=profile_mode)
            except InfeasibleLayoutError:
                per_option[option.name] = None
                continue
            per_option[option.name] = recommendation
            if best_recommendation is None or recommendation.toc_cents < best_recommendation.toc_cents:
                best_option = option
                best_recommendation = recommendation

        return ProvisioningDecision(
            chosen=best_option,
            recommendation=best_recommendation,
            per_option=per_option,
            elapsed_s=time.perf_counter() - started,
        )
