"""Selectable chunk-scoring kernels for the batch layout evaluator.

The inner loop of every search -- :meth:`~repro.core.batch_eval.
BatchLayoutEvaluator.evaluate_chunk` -- spends its time in four numeric
primitives: accumulating per-candidate per-class space usage, pricing the
resulting layouts, encoding per-query placement signatures, and
gather-accumulating per-query response times into a workload total.  The
default implementations are interpreted numpy (one array op per object
column / storage class / query), which pays a Python dispatch and a full
temporary array per step.

This module packages those primitives as swappable *kernels*:

* ``kernel="numpy"`` -- the reference implementations, byte-for-byte the
  array expressions the evaluator has always used;
* ``kernel="compiled"`` -- ``numba``-jitted single-pass loops over the same
  operands.  numba is an **optional** dependency: when it is not importable
  the compiled kernel falls back to the numpy kernel *without any tolerance
  relaxation* (there is no approximate path -- both kernels are exact, the
  fallback merely loses the speedup), and :attr:`Kernel.fallback_reason`
  records why.

Exactness contract
------------------
The compiled loops replay the numpy expressions' floating-point operation
order **per output element**: space usage adds pinned objects first and then
the variable columns left to right, layout cost sums ``price_j * used_j``
over classes in class order, and the DSS total adds one response per query
in instance order.  Each elementary operation is an IEEE 754 double multiply
or add (numba does not enable fast-math, so LLVM may not contract them into
FMAs), which makes every kernel bitwise identical to the numpy path -- the
three-path ES equality tests extend to a fourth path with ``==``, not
``approx``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION: Optional[str] = getattr(numba, "__version__", "unknown")
except ImportError:  # the supported, tolerance-free fallback configuration
    numba = None
    HAVE_NUMBA = False
    NUMBA_VERSION = None

KERNEL_NAMES = ("numpy", "compiled")


class Kernel:
    """One resolved set of chunk-scoring primitives.

    ``requested`` is the name the caller asked for, ``name`` the
    implementation actually serving it (they differ only when ``compiled``
    fell back to ``numpy``); ``fallback_reason`` documents the downgrade.
    All four primitives are bitwise-exact replacements for each other.
    """

    def __init__(
        self,
        requested: str,
        name: str,
        accumulate_space: Callable,
        layout_cost: Callable,
        signature_codes: Callable,
        add_responses: Callable,
        fallback_reason: Optional[str] = None,
    ):
        self.requested = requested
        self.name = name
        self.accumulate_space = accumulate_space
        self.layout_cost = layout_cost
        self.signature_codes = signature_codes
        self.add_responses = add_responses
        self.fallback_reason = fallback_reason

    @property
    def compiled(self) -> bool:
        """True when the jitted implementations are serving this kernel."""
        return self.name == "compiled"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f" (fallback: {self.fallback_reason})" if self.fallback_reason else ""
        return f"Kernel({self.requested!r} -> {self.name!r}{suffix})"


# ---------------------------------------------------------------------------
# numpy reference implementations
# ---------------------------------------------------------------------------

def _np_accumulate_space(var_assign: np.ndarray, num_classes: int,
                         sizes: np.ndarray, pinned_classes: np.ndarray,
                         pinned_sizes: np.ndarray) -> np.ndarray:
    """Per-candidate per-class usage: pinned first, then columns left to right."""
    batch = var_assign.shape[0]
    used = np.zeros((batch, num_classes))
    for class_index, size_gb in zip(pinned_classes, pinned_sizes):
        used[:, class_index] += size_gb
    rows = np.arange(batch)
    for column in range(var_assign.shape[1]):
        used[rows, var_assign[:, column]] += sizes[column]
    return used


def _np_layout_cost(used: np.ndarray, prices: np.ndarray) -> np.ndarray:
    """``C(L) = sum_j p_j * S_j`` with the scalar per-class add order."""
    cost = np.zeros(used.shape[0])
    for class_index in range(prices.shape[0]):
        cost += prices[class_index] * used[:, class_index]
    return cost


def _np_signature_codes(sub_assign: np.ndarray, var_columns: np.ndarray,
                        weights: np.ndarray) -> np.ndarray:
    """Mixed-radix signature code per candidate row (exact integer math)."""
    if var_columns.size == 0:
        return np.zeros(sub_assign.shape[0], dtype=np.int64)
    return sub_assign[:, var_columns] @ weights


def _np_add_responses(total_ms: np.ndarray, response_table: np.ndarray,
                      slots: np.ndarray, cap: float,
                      performance_ok: np.ndarray) -> None:
    """Gather one query's responses by slot, add into ``total_ms`` in place.

    ``cap`` is the query's response-time SLA cap, or ``nan`` when the query
    is uncapped; capped queries AND their pass mask into ``performance_ok``.
    """
    response = response_table[slots]
    total_ms += response
    if cap == cap:  # nan check: nan != nan
        performance_ok &= response <= cap


_NUMPY_KERNEL = Kernel(
    requested="numpy",
    name="numpy",
    accumulate_space=_np_accumulate_space,
    layout_cost=_np_layout_cost,
    signature_codes=_np_signature_codes,
    add_responses=_np_add_responses,
)


# ---------------------------------------------------------------------------
# numba-jitted implementations (optional)
# ---------------------------------------------------------------------------

_COMPILED_KERNEL: Optional[Kernel] = None


def _build_compiled_kernel() -> Kernel:  # pragma: no cover - needs numba
    """Jit the four primitives; call only when ``HAVE_NUMBA`` is true."""
    jit = numba.njit(cache=False, fastmath=False)

    @jit
    def accumulate_space(var_assign, num_classes, sizes, pinned_classes, pinned_sizes):
        batch, num_objects = var_assign.shape
        used = np.zeros((batch, num_classes))
        for row in range(batch):
            for position in range(pinned_classes.shape[0]):
                used[row, pinned_classes[position]] += pinned_sizes[position]
            for column in range(num_objects):
                used[row, var_assign[row, column]] += sizes[column]
        return used

    @jit
    def layout_cost(used, prices):
        batch = used.shape[0]
        cost = np.zeros(batch)
        for row in range(batch):
            total = 0.0
            for class_index in range(prices.shape[0]):
                total += prices[class_index] * used[row, class_index]
            cost[row] = total
        return cost

    @jit
    def signature_codes(sub_assign, var_columns, weights):
        batch = sub_assign.shape[0]
        codes = np.zeros(batch, dtype=np.int64)
        for row in range(batch):
            code = 0
            for position in range(var_columns.shape[0]):
                code += sub_assign[row, var_columns[position]] * weights[position]
            codes[row] = code
        return codes

    @jit
    def add_responses(total_ms, response_table, slots, cap, performance_ok):
        capped = cap == cap
        for row in range(slots.shape[0]):
            response = response_table[slots[row]]
            total_ms[row] += response
            if capped and response > cap:
                performance_ok[row] = False

    return Kernel(
        requested="compiled",
        name="compiled",
        accumulate_space=accumulate_space,
        layout_cost=layout_cost,
        signature_codes=signature_codes,
        add_responses=add_responses,
    )


def get_kernel(name: str = "numpy") -> Kernel:
    """Resolve a kernel by name (``"numpy"`` or ``"compiled"``).

    ``"compiled"`` returns the jitted kernel when numba is importable and a
    numpy-backed fallback kernel (``fallback_reason`` set) otherwise --
    results are bitwise identical either way, so selecting ``"compiled"``
    is always safe.  Unknown names raise :class:`ConfigurationError`.
    """
    if name == "numpy":
        return _NUMPY_KERNEL
    if name == "compiled":
        global _COMPILED_KERNEL
        if _COMPILED_KERNEL is None:
            if HAVE_NUMBA:  # pragma: no cover - needs numba
                _COMPILED_KERNEL = _build_compiled_kernel()
            else:
                _COMPILED_KERNEL = Kernel(
                    requested="compiled",
                    name="numpy",
                    accumulate_space=_np_accumulate_space,
                    layout_cost=_np_layout_cost,
                    signature_codes=_np_signature_codes,
                    add_responses=_np_add_responses,
                    fallback_reason="numba is not importable",
                )
        return _COMPILED_KERNEL
    raise ConfigurationError(
        f"unknown evaluation kernel {name!r} (expected one of {KERNEL_NAMES})"
    )


def describe_kernels() -> Dict[str, object]:
    """Capability report for benchmarks and BENCH JSON payloads."""
    compiled = get_kernel("compiled")
    return {
        "have_numba": HAVE_NUMBA,
        "numba_version": NUMBA_VERSION,
        "compiled_backend": compiled.name,
        "compiled_fallback_reason": compiled.fallback_reason,
    }


__all__ = [
    "HAVE_NUMBA",
    "KERNEL_NAMES",
    "NUMBA_VERSION",
    "Kernel",
    "describe_kernels",
    "get_kernel",
]
