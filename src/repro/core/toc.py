"""Total operating cost (TOC) computation (paper Sections 2.1 and 2.3).

For a layout ``L`` and workload ``W``:

* the layout cost ``C(L)`` is the hourly storage cost of the space the layout
  occupies on each class;
* for DSS workloads the workload cost is ``C(L, W) = C(L) * t(L, W)`` --
  cents per execution of the workload;
* for OLTP workloads the workload cost is ``C(L, W) = C(L) / T(L, W)`` --
  cents per measured transaction, where ``T`` is throughput in tasks/hour.

Both are "TOC" in the paper's terminology; which one applies is determined by
the workload's kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.layout import Layout
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class TOCReport:
    """The TOC of one layout for one workload, plus the underlying metrics."""

    layout_name: str
    workload_name: str
    metric: str
    layout_cost_cents_per_hour: float
    execution_time_s: Optional[float]
    throughput_tasks_per_hour: Optional[float]
    transactions_per_minute: Optional[float]
    toc_cents: float
    run_result: object = None

    @property
    def response_time_s(self) -> Optional[float]:
        """Alias for the workload execution time (DSS workloads)."""
        return self.execution_time_s


class TOCModel:
    """Evaluates layouts against workloads to produce TOC reports.

    Parameters
    ----------
    estimator:
        A workload estimator exposing ``estimate_workload`` and
        ``run_workload`` (normally :class:`repro.dbms.executor.WorkloadEstimator`).
    cost_override:
        Optional callable ``layout -> cents_per_hour`` replacing the default
        linear layout cost; used by the discrete-sized cost model of
        Section 5.2.
    """

    def __init__(self, estimator, cost_override: Optional[Callable[[Layout], float]] = None):
        self.estimator = estimator
        self.cost_override = cost_override

    # ------------------------------------------------------------------
    @property
    def vectorizable_layout_cost(self) -> bool:
        """True when the layout cost is the default linear ``C(L)``.

        Batch evaluators may then compute costs from size/price matrices; a
        ``cost_override`` (the discrete-sized model of Section 5.2) is an
        opaque ``layout -> cents`` callable and forces the scalar path.
        """
        return self.cost_override is None

    def layout_cost(self, layout: Layout) -> float:
        """The layout cost ``C(L)`` in cents per hour."""
        if self.cost_override is not None:
            return self.cost_override(layout)
        return layout.storage_cost_cents_per_hour()

    def evaluate(self, layout: Layout, workload, mode: str = "estimate") -> TOCReport:
        """Compute the TOC of a layout for a workload.

        ``mode`` selects optimizer estimates (``"estimate"``) or a simulated
        test run (``"run"``).
        """
        if mode == "estimate":
            result = self.estimator.estimate_workload(workload, layout.placement())
        elif mode == "run":
            result = self.estimator.run_workload(workload, layout.placement())
        else:
            raise WorkloadError(f"unknown TOC evaluation mode {mode!r}")
        return self.report_from_result(layout, workload, result)

    def report_from_result(self, layout: Layout, workload, result) -> TOCReport:
        """Build a TOC report from an existing workload run result."""
        cost_per_hour = self.layout_cost(layout)
        if getattr(workload, "is_oltp", False) or result.kind == "oltp":
            tasks_per_hour = result.tasks_per_hour
            if tasks_per_hour <= 0:
                raise WorkloadError("cannot compute TOC for zero throughput")
            toc = cost_per_hour / tasks_per_hour
            return TOCReport(
                layout_name=layout.name,
                workload_name=result.workload_name,
                metric="cents_per_transaction",
                layout_cost_cents_per_hour=cost_per_hour,
                execution_time_s=None,
                throughput_tasks_per_hour=tasks_per_hour,
                transactions_per_minute=result.transactions_per_minute,
                toc_cents=toc,
                run_result=result,
            )
        hours = result.total_time_hours
        toc = cost_per_hour * hours
        return TOCReport(
            layout_name=layout.name,
            workload_name=result.workload_name,
            metric="cents_per_workload_execution",
            layout_cost_cents_per_hour=cost_per_hour,
            execution_time_s=result.total_time_s,
            throughput_tasks_per_hour=result.tasks_per_hour,
            transactions_per_minute=None,
            toc_cents=toc,
            run_result=result,
        )

    # ------------------------------------------------------------------
    def compare(self, layouts: Dict[str, Layout], workload, mode: str = "estimate") -> Dict[str, TOCReport]:
        """Evaluate several layouts against the same workload."""
        return {name: self.evaluate(layout, workload, mode=mode) for name, layout in layouts.items()}
