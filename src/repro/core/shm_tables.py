"""Shared-memory transport for pre-warmed estimate tables.

PR 3 exposed ``build_s`` -- every pool worker unpickles an
:class:`~repro.core.parallel_search.EnumerationSpec`, reconstructs a
:class:`~repro.core.batch_eval.BatchLayoutEvaluator`, and re-warms its
estimate tables before scoring a single chunk.  For fully warmed DSS
evaluators all of that boot work reduces to data the coordinator already
holds: one code-indexed ``float64`` response array per query
(:meth:`BatchLayoutEvaluator.dense_response_tables`).

:class:`SharedEstimateTables` serializes those arrays **once** into a single
C-contiguous :class:`multiprocessing.shared_memory.SharedMemory` segment.
Workers attach read-only numpy views by name/offset
(:meth:`SharedEstimateTables.attach`) and install them with
:meth:`BatchLayoutEvaluator.install_dense_tables`; per-worker boot collapses
from "unpickle + construct + warm" to a few-microsecond map of an existing
segment, and chunk scoring additionally skips the per-chunk ``np.unique`` +
dict slot translation because a dense table's slot *is* the signature code.

The transport is an optimisation with two graceful exits, both preserving
bitwise-identical results:

* ineligible evaluators (OLTP aggregation, partially warmed tables) raise
  :class:`~repro.core.batch_eval.UnsupportedBatchEvaluation` from
  :meth:`build`, and the engine falls back to the pickle path;
* platforms without a usable ``/dev/shm`` (or with ``shared_memory``
  missing) surface ``OSError``/``ImportError``, handled the same way.

Lifetime: the coordinator owns the segment and must call :meth:`unlink`
(the parallel engine does so from its ``close()``/context-manager exit);
workers only ever :meth:`close` their attachment.  Resource-tracker note:
on Python < 3.13 the stdlib registers attachments as if they were owned,
but ``multiprocessing`` pool children (fork *and* spawn) share the
coordinator's tracker process, whose name cache is a set -- the attach-side
re-registration is a no-op and the coordinator's :meth:`unlink` clears the
single entry, so no double-unlink or leak warning can occur in the engine's
usage.  Attaching from an unrelated process that outlives the coordinator
is not supported on < 3.13.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

_DTYPE = np.dtype("float64")


class SharedEstimateTables:
    """One shared-memory segment holding every query's dense response table.

    Construct through :meth:`build` (coordinator, owns + unlinks) or
    :meth:`attach` (worker, maps + closes).  ``descriptor()`` is the small
    picklable handle that travels to workers via pool ``initargs``.
    """

    def __init__(self, shm, layout: List[Tuple[str, int, int]], owner: bool):
        self._shm = shm
        self._layout = layout
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, evaluator) -> "SharedEstimateTables":
        """Serialize ``evaluator``'s dense tables into a fresh shm segment.

        Raises ``UnsupportedBatchEvaluation`` for ineligible evaluators and
        whatever ``OSError`` the platform raises when shared memory is
        unavailable; callers treat both as "use the pickle path".
        """
        from multiprocessing import shared_memory

        tables = evaluator.dense_response_tables()
        layout: List[Tuple[str, int, int]] = []
        offset = 0
        for name in sorted(tables):
            length = int(tables[name].shape[0])
            layout.append((name, offset, length))
            offset += length * _DTYPE.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, start, length in layout:
            view = np.ndarray((length,), dtype=_DTYPE, buffer=shm.buf, offset=start)
            view[:] = tables[name]
        return cls(shm, layout, owner=True)

    def descriptor(self) -> Dict[str, object]:
        """The picklable attach handle: segment name + per-table layout."""
        return {"name": self._shm.name, "layout": list(self._layout)}

    @classmethod
    def attach(cls, descriptor: Mapping[str, object]) -> "SharedEstimateTables":
        """Map an existing segment read-only (worker side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=descriptor["name"])
        return cls(shm, [tuple(entry) for entry in descriptor["layout"]], owner=False)

    # ------------------------------------------------------------------
    # views + lifetime
    # ------------------------------------------------------------------
    def views(self) -> Dict[str, np.ndarray]:
        """Zero-copy read-only numpy views, one per query table."""
        out: Dict[str, np.ndarray] = {}
        for name, start, length in self._layout:
            view = np.ndarray((length,), dtype=_DTYPE, buffer=self._shm.buf, offset=start)
            view.flags.writeable = False
            out[name] = view
        return out

    @property
    def nbytes(self) -> int:
        """Total table payload in bytes (excludes allocator rounding)."""
        return sum(length for _, _, length in self._layout) * _DTYPE.itemsize

    @property
    def num_tables(self) -> int:
        """Number of per-query tables in the segment."""
        return len(self._layout)

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; implies :meth:`close`)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            self._owner = False

    def __enter__(self) -> "SharedEstimateTables":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink() if self._owner else self.close()


__all__ = ["SharedEstimateTables"]
