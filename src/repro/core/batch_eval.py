"""Vectorized batch evaluation of candidate layouts (TOC + feasibility).

The paper's searches -- exhaustive search (Section 4.4.3/4.5.3), DOT's walk
(Procedure 1) and the MILP relaxation -- all reduce to the same inner loop:
"evaluate total operating cost and feasibility for many candidate layouts".
The scalar implementation pays full Python overhead per candidate: a fresh
:class:`~repro.core.layout.Layout`, a per-object placement dict, a plan-cache
key per query, and dict-merge bookkeeping for I/O counts, even when every
plan is a cache hit.

This module removes that overhead without changing a single result:

* :class:`BatchLayoutEvaluator` represents candidate layouts as integer
  class-index matrices and scores whole batches with array operations.  The
  only remaining per-candidate Python work is one optimizer estimate per
  *new* ``(query, touched-placement-signature)`` pair -- everything else
  (space, capacity, layout cost, workload time, SLA filtering) is numpy.
* :class:`IncrementalWorkloadEvaluator` is the scalar counterpart used by
  DOT's move walk: per-query estimates are cached by placement signature, so
  a candidate that only moves one object group re-estimates only the queries
  touching that group.
* :func:`group_placement_coefficients` builds the MILP's per-(group,
  placement) cost/time coefficient vectors from the same machinery.

Exactness contract
------------------
Every floating-point reduction below is performed in the *same operation
order* as the scalar code path it replaces (sequential per-object adds for
space and cost, per-stream-instance adds for workload time, the original
dict-merge order for OLTP aggregation).  IEEE 754 addition is deterministic,
so batch results are bitwise identical to the legacy path -- the exhaustive
search returns the identical best layout and TOC, it just gets there faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.kernels import Kernel, get_kernel
from repro.core.toc import TOCModel, TOCReport
from repro.dbms.concurrency import ClosedLoopModel
from repro.dbms.executor import ExecutionResult, WorkloadRunResult
from repro.dbms.plan import merge_io_counts, scale_io_counts
from repro.objects import DatabaseObject
from repro.sla.constraints import PerformanceConstraint
from repro.storage.io_profile import IOType
from repro.storage.storage_class import StorageClass, StorageSystem
from repro.units import MS_PER_SECOND, SECONDS_PER_HOUR


class UnsupportedBatchEvaluation(Exception):
    """Raised when a configuration cannot take the vectorized fast path.

    Callers catch this and fall back to the scalar implementation, so raising
    it is never an error condition -- it is the feature-gating mechanism for
    cost overrides, unknown constraint types and exotic workload kinds.
    """


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------

def iter_assignment_chunks(
    num_objects: int,
    num_classes: int,
    chunk_size: int = 4096,
    start: int = 0,
    stop: Optional[int] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Enumerate assignments ``[start, stop)`` as ``(start_index, matrix)`` chunks.

    Rows follow ``itertools.product(range(M), repeat=N)`` order exactly (the
    last column varies fastest), which is the enumeration order of the scalar
    exhaustive search; each matrix holds class indices with one column per
    object.  ``start``/``stop`` select a sub-range of the full ``[0, M^N)``
    mixed-radix index space, which is how the parallel engine's shards stream
    their own slices of the enumeration.
    """
    if num_objects < 1:
        raise ValueError("need at least one object column to enumerate")
    if num_classes < 1:
        raise ValueError("need at least one storage class to enumerate")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    total = num_classes**num_objects
    if total > np.iinfo(np.int64).max:
        # The mixed-radix index space must fit the int64 indices the decode
        # loop (and every shard/chunk boundary) is computed in; beyond that
        # the arithmetic would silently wrap.  3^19 ~ 1.16e9 is far inside
        # the guard; it trips at ~40 ternary objects.
        raise ValueError(
            f"enumeration space {num_classes}^{num_objects} exceeds the 64-bit "
            "mixed-radix index range"
        )
    if stop is None:
        stop = total
    if not 0 <= start <= stop <= total:
        raise ValueError(f"invalid enumeration range [{start}, {stop}) for {total} assignments")
    for chunk_start in range(start, stop, chunk_size):
        chunk_stop = min(chunk_start + chunk_size, stop)
        indices = np.arange(chunk_start, chunk_stop, dtype=np.int64)
        matrix = np.empty((chunk_stop - chunk_start, num_objects), dtype=np.int64)
        for column in range(num_objects - 1, -1, -1):
            matrix[:, column] = indices % num_classes
            indices //= num_classes
        yield chunk_start, matrix


def accumulate_space_used(
    var_assign: np.ndarray,
    num_classes: int,
    sizes: Sequence[float],
    pinned: Sequence[Tuple[int, float]] = (),
) -> np.ndarray:
    """Per-candidate per-class space usage, in the scalar path's add order.

    Pinned ``(class_index, size_gb)`` pairs are accumulated first, then the
    variable columns left to right -- the exact floating-point order of the
    scalar layout's space computation.  Both the batch evaluator and the
    parallel engine's prefix bounds go through this one helper: the pruning
    soundness argument (a prefix's usage is an exact intermediate of the full
    accumulation) relies on the two never diverging.
    """
    batch = var_assign.shape[0]
    used = np.zeros((batch, num_classes))
    for class_index, size_gb in pinned:
        used[:, class_index] += size_gb
    rows = np.arange(batch)
    for column, size_gb in enumerate(sizes):
        used[rows, var_assign[:, column]] += size_gb
    return used


def _mixed_radix_weights(positions: int, base: int) -> np.ndarray:
    """Weights turning a row of class indices into a single signature code."""
    weights = np.empty(positions, dtype=np.int64)
    value = 1
    for position in range(positions - 1, -1, -1):
        if value > 2**62:
            raise UnsupportedBatchEvaluation(
                "signature space too large for 64-bit encoding"
            )
        weights[position] = value
        value *= base
    return weights


# ---------------------------------------------------------------------------
# Shared replication of the scalar estimator's aggregation
# ---------------------------------------------------------------------------

class _ServiceTimeTable:
    """Memoized per-(storage class, I/O type) service times at one concurrency.

    Values are exactly ``StorageClass.service_time_ms`` results (cached like
    ``CostModel.io_latency_ms`` does per placement, but shared across all
    candidates of a search)."""

    __slots__ = ("concurrency", "_cache")

    def __init__(self, concurrency: int):
        self.concurrency = concurrency
        self._cache: Dict[Tuple[str, IOType], float] = {}

    def latency_ms(self, storage_class: StorageClass, io_type: IOType) -> float:
        key = (storage_class.name, io_type)
        cached = self._cache.get(key)
        if cached is None:
            cached = storage_class.service_time_ms(io_type, self.concurrency)
            self._cache[key] = cached
        return cached


class _OltpMixModel:
    """The workload-level constants of an OLTP mix evaluation."""

    __slots__ = ("mix", "total_weight", "model", "measured_fraction")

    def __init__(self, workload, estimator, concurrency: int):
        self.mix = list(workload.transaction_mix)
        self.total_weight = sum(weight for _, weight in self.mix)
        if self.total_weight <= 0:
            raise UnsupportedBatchEvaluation(
                "transaction mix weights must sum to a positive value"
            )
        self.model = ClosedLoopModel(
            concurrency=concurrency, efficiency=estimator.oltp_efficiency
        )
        self.measured_fraction = getattr(workload, "measured_transaction_fraction", 1.0)


def _replay_mix(mix, total_weight, execution_for):
    """Replays ``WorkloadEstimator._run_mix``'s accumulation from cached
    executions (same merge and float order).  ``execution_for`` is called
    once per mix entry, in mix order."""
    io_by_object: Dict[str, Dict[IOType, float]] = {}
    per_query_times: List[Tuple[str, float]] = []
    avg_response_ms = 0.0
    avg_cpu_ms = 0.0
    for query, weight in mix:
        share = weight / total_weight
        execution = execution_for(query)
        per_query_times.append((query.name, execution.response_time_ms))
        merge_io_counts(io_by_object, scale_io_counts(execution.io_counts, share))
        avg_response_ms += share * execution.response_time_ms
        avg_cpu_ms += share * execution.cpu_time_ms
    return io_by_object, per_query_times, avg_response_ms, avg_cpu_ms


def _busy_time_by_class(io_counts, storage_class_of, service_times: _ServiceTimeTable):
    """Replicates ``CostModel.io_time_by_class`` bit for bit: same iteration
    order, and counts <= 0 contribute an exact ``0.0``."""
    busy: Dict[str, float] = {}
    for object_name, by_type in io_counts.items():
        storage_class = storage_class_of(object_name)
        class_name = storage_class.name
        for io_type, count in by_type.items():
            if count <= 0:
                time_ms = 0.0
            else:
                time_ms = count * service_times.latency_ms(storage_class, io_type)
            busy[class_name] = busy.get(class_name, 0.0) + time_ms
    return busy


# ---------------------------------------------------------------------------
# Per-query estimate cache
# ---------------------------------------------------------------------------

class QueryEstimateCache:
    """Caches optimizer estimates by (query, touched-placement-signature).

    The signature covers every object whose storage class can influence the
    estimate: the query's referenced objects plus the optimizer's temporary
    object (spills pay I/O against it).  Two placements with equal signatures
    yield bitwise-identical estimates, so the cached
    :class:`~repro.dbms.executor.ExecutionResult` can stand in for a fresh
    call.

    One cache instance can be *shared* between several evaluators (ES and
    DOT of the same experiment, or successive epochs of the online advisor):
    entries key on query name and signature only, so any consumer working
    from the same estimator, the same query templates and the same
    concurrency gets bitwise-identical results while re-estimating nothing.
    """

    def __init__(self, estimator, concurrency: int):
        self.estimator = estimator
        self.concurrency = concurrency
        self._cache: Dict[tuple, ExecutionResult] = {}
        self._signature_objects: Dict[str, Tuple[str, ...]] = {}
        self.hits = 0
        self.misses = 0

    def signature_objects(self, query) -> Tuple[str, ...]:
        names = self._signature_objects.get(query.name)
        if names is None:
            names = self.estimator.signature_objects(query)
            self._signature_objects[query.name] = names
        return names

    def signature(self, query, placement: Mapping[str, StorageClass]) -> tuple:
        parts = []
        for name in self.signature_objects(query):
            storage_class = placement.get(name)
            parts.append(storage_class.name if storage_class is not None else None)
        return tuple(parts)

    def get(self, query, placement: Mapping[str, StorageClass]) -> ExecutionResult:
        key = (query.name, self.signature(query, placement))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        execution = self.estimator.estimate_query(query, placement, self.concurrency)
        self._cache[key] = execution
        return execution


def _adopt_cache(cache: Optional[QueryEstimateCache], estimator,
                 concurrency: int) -> QueryEstimateCache:
    """Validate a shared estimate cache, or build a private one.

    A shared cache is only sound when it was filled by the *same* estimator
    at the *same* concurrency -- signatures do not encode either, so a
    mismatch would serve estimates computed for a different calibration
    point.  Mismatches raise :class:`UnsupportedBatchEvaluation` so callers
    fall back to the scalar path instead of silently mixing tables.
    """
    if cache is None:
        return QueryEstimateCache(estimator, concurrency)
    if cache.estimator is not estimator:
        raise UnsupportedBatchEvaluation(
            "shared estimate cache was built for a different estimator"
        )
    if cache.concurrency != concurrency:
        raise UnsupportedBatchEvaluation(
            f"shared estimate cache calibrated at concurrency {cache.concurrency}, "
            f"workload runs at {concurrency}"
        )
    return cache


# ---------------------------------------------------------------------------
# Scalar fast path (DOT's move walk)
# ---------------------------------------------------------------------------

class IncrementalWorkloadEvaluator:
    """Drop-in for ``TOCModel.evaluate(layout, workload, mode="estimate")``.

    Re-estimates only the queries whose touched-placement signature changed
    since the last evaluation (every other query hits the estimate cache) and
    skips the per-candidate I/O bookkeeping that feasibility checking never
    reads.  The numbers it produces are bitwise identical to the legacy path;
    only dispensable side products (the DSS candidates' merged I/O counts)
    are omitted, which is why search loops re-evaluate their final winner
    through the full estimator.  Consumers that *do* need the per-object I/O
    counts (the online advisor's telemetry monitor) pass ``collect_io=True``,
    which merges them from the cached executions in the scalar path's exact
    order.
    """

    def __init__(self, estimator, workload, toc_model: TOCModel,
                 cache: Optional[QueryEstimateCache] = None,
                 collect_io: bool = False):
        kind = getattr(workload, "kind", "dss")
        if kind not in ("dss", "oltp"):
            raise UnsupportedBatchEvaluation(f"unsupported workload kind {kind!r}")
        self.estimator = estimator
        self.workload = workload
        self.toc_model = toc_model
        self.kind = kind
        self.concurrency = getattr(workload, "concurrency", 1)
        self.cache = _adopt_cache(cache, estimator, self.concurrency)
        self.collect_io = collect_io
        self._service_times = _ServiceTimeTable(self.concurrency)
        if kind == "oltp":
            self._oltp = _OltpMixModel(workload, estimator, self.concurrency)

    # ------------------------------------------------------------------
    def run_result(self, layout) -> WorkloadRunResult:
        """Estimate the workload under ``layout`` (cached per-query plans)."""
        placement = layout.placement()
        name = getattr(self.workload, "name", "workload")
        if self.kind == "oltp":
            result = WorkloadRunResult(
                workload_name=name,
                kind="oltp",
                concurrency=self.concurrency,
                measured_transaction_fraction=self._oltp.measured_fraction,
            )
            io_by_object, per_query_times, avg_response_ms, avg_cpu_ms = _replay_mix(
                self._oltp.mix, self._oltp.total_weight,
                lambda query: self.cache.get(query, placement),
            )
            result.io_by_object = io_by_object
            result.per_query_times_ms = per_query_times
            busy_by_class = _busy_time_by_class(
                io_by_object, placement.__getitem__, self._service_times
            )
            result.throughput = self._oltp.model.estimate(
                response_time_ms=max(avg_response_ms, 1e-9),
                busy_time_by_class_ms=busy_by_class,
                cpu_time_ms=avg_cpu_ms,
            )
            result.busy_time_by_class_ms = busy_by_class
            result.total_time_s = getattr(self.workload, "duration_s", 3600.0)
            return result

        result = WorkloadRunResult(
            workload_name=name, kind="dss", concurrency=self.concurrency
        )
        total_ms = 0.0
        for query in self.workload.queries:
            execution = self.cache.get(query, placement)
            result.per_query_times_ms.append((query.name, execution.response_time_ms))
            if self.collect_io:
                merge_io_counts(result.io_by_object, execution.io_counts)
            total_ms += execution.response_time_ms
        result.total_time_s = total_ms / 1000.0
        return result

    def evaluate(self, layout) -> TOCReport:
        """The TOC report of one candidate layout (estimate mode)."""
        return self.toc_model.report_from_result(layout, self.workload, self.run_result(layout))


# ---------------------------------------------------------------------------
# Batch evaluation
# ---------------------------------------------------------------------------

@dataclass
class BatchEvalStats:
    """Work accounting of a batch evaluation run.

    ``build_s`` is the evaluator construction plus estimate-table warm-up
    time, reported separately from the search's ``elapsed_s`` so that a cold
    shared cache does not skew ES-vs-DOT search-time comparisons.  The
    ``pruned_*`` counters are written by the parallel engine
    (:mod:`repro.core.parallel_search`): subtrees are skipped by the
    per-prefix capacity bound, chunks by the incumbent-TOC bound; the
    ``*_layouts`` twins count the candidate layouts those skips avoided
    evaluating.
    """

    candidates: int = 0
    capacity_feasible: int = 0
    feasible: int = 0
    estimator_calls: int = 0
    oltp_aggregations: int = 0
    chunks: int = 0
    #: Coordinator evaluator construction time; on pool runs the summed
    #: per-worker unpickle+construct time folds in as well.
    build_s: float = 0.0
    #: Estimate-table warm-up time (coordinator ``warm_signatures`` plus any
    #: per-worker warm on the pickle fallback path), split out of ``build_s``.
    warm_s: float = 0.0
    #: Per-worker shared-memory attach time (the shm replacement for the
    #: pickle path's per-worker ``build_s + warm_s``).
    attach_s: float = 0.0
    #: Cumulative wall time spent inside ``evaluate_chunk`` (the vectorized
    #: scoring itself, excluding enumeration and coordination overhead).
    eval_s: float = 0.0
    workers: int = 0
    shards: int = 0
    #: Shard units dispatched beyond each worker's initial share -- i.e.
    #: ranges idle workers pulled ("stole") from the coordinator deque.
    steals: int = 0
    #: Worker-local estimate-cache hit/miss deltas, folded once per
    #: ``(shard_id, attempt)`` so retried or stolen shards never double-count.
    cache_hits: int = 0
    cache_misses: int = 0
    pruned_subtrees: int = 0
    pruned_subtree_layouts: int = 0
    pruned_chunks: int = 0
    pruned_chunk_layouts: int = 0

    def merge(self, other: "BatchEvalStats") -> None:
        """Fold another stats delta (e.g. one worker's shard) into this one.

        Counting fields add up; ``workers`` and the coordinator-side slices of
        ``build_s``/``warm_s`` describe the run as a whole and are stamped by
        the coordinating caller (worker boot deltas arrive through shard
        outcomes, which this method does fold).
        """
        self.candidates += other.candidates
        self.capacity_feasible += other.capacity_feasible
        self.feasible += other.feasible
        self.estimator_calls += other.estimator_calls
        self.oltp_aggregations += other.oltp_aggregations
        self.chunks += other.chunks
        self.eval_s += other.eval_s
        self.shards += other.shards
        self.steals += other.steals
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.build_s += other.build_s
        self.warm_s += other.warm_s
        self.attach_s += other.attach_s
        self.pruned_subtrees += other.pruned_subtrees
        self.pruned_subtree_layouts += other.pruned_subtree_layouts
        self.pruned_chunks += other.pruned_chunks
        self.pruned_chunk_layouts += other.pruned_chunk_layouts

    @property
    def pruned_layouts(self) -> int:
        """Candidate layouts never evaluated thanks to either bound."""
        return self.pruned_subtree_layouts + self.pruned_chunk_layouts


@dataclass
class ChunkEvaluation:
    """Scores of one candidate chunk.

    ``toc_cents`` is ``inf`` for candidates failing the capacity pre-filter
    (their workload estimate is never computed, matching the scalar search's
    pre-filter); ``feasible`` combines capacity and SLA feasibility.
    """

    toc_cents: np.ndarray
    capacity_ok: np.ndarray
    feasible: np.ndarray

    @property
    def best_index(self) -> Optional[int]:
        """Row of the cheapest feasible candidate, or ``None``."""
        if not bool(self.feasible.any()):
            return None
        masked = np.where(self.feasible, self.toc_cents, np.inf)
        return int(np.argmin(masked))


class _QueryTable:
    """Per-query estimate table indexed by placement-signature slots."""

    __slots__ = (
        "query", "var_columns", "weights", "code_to_slot",
        "response_ms", "executions", "touched_classes",
        "dense_response", "_response_array",
    )

    def __init__(self, query, var_columns: List[int], num_classes: int):
        self.query = query
        self.var_columns = np.array(var_columns, dtype=np.int64)
        self.weights = _mixed_radix_weights(len(var_columns), num_classes) \
            if var_columns else np.zeros(0, dtype=np.int64)
        self.code_to_slot: Dict[int, int] = {}
        self.response_ms: List[float] = []
        self.executions: List[ExecutionResult] = []
        #: Per slot: {object_name: class_name} for the signature's placeable
        #: objects (used to type OLTP busy time by storage class).
        self.touched_classes: List[Dict[str, str]] = []
        #: Complete response table indexed directly by signature *code*
        #: (attached from a shared-memory segment); when set, slot == code
        #: and the per-chunk ``np.unique``/dict translation is skipped.
        self.dense_response: Optional[np.ndarray] = None
        self._response_array: Optional[np.ndarray] = None

    def response_array(self) -> np.ndarray:
        """Responses indexed by slot, as one cached contiguous array.

        The lazy slot path re-caches whenever a new slot was appended; the
        dense (shared-memory) path returns the attached table itself.
        """
        if self.dense_response is not None:
            return self.dense_response
        cached = self._response_array
        if cached is None or cached.shape[0] != len(self.response_ms):
            cached = np.array(self.response_ms)
            self._response_array = cached
        return cached


class BatchLayoutEvaluator:
    """Scores batches of candidate layouts with array operations.

    Candidates are rows of an integer matrix: column ``k`` holds the storage
    class index (into ``system.class_names``) of the ``k``-th *variable*
    object.  Pinned objects are part of every candidate at a fixed class and
    participate in space, cost and query signatures, mirroring the scalar
    exhaustive search's ``pinned_objects`` semantics.

    Parameters
    ----------
    variable_objects:
        The objects the candidate columns assign, in column order.  The order
        must match the scalar enumeration being replaced (object order for
        flat enumeration, group-by-group member order for per-group
        enumeration) so that floating-point accumulation order -- and thus
        every result bit -- is preserved.
    pinned:
        ``(object, class_name)`` pairs included in every candidate.
    workload:
        The workload to estimate (DSS stream or OLTP mix).
    constraint:
        Optional SLA; only the two concrete paper constraint types are
        vectorizable, anything else raises
        :class:`UnsupportedBatchEvaluation`.
    """

    def __init__(
        self,
        variable_objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        workload,
        pinned: Sequence[Tuple[DatabaseObject, str]] = (),
        constraint: Optional[PerformanceConstraint] = None,
        cache: Optional[QueryEstimateCache] = None,
        kernel: Union[str, Kernel] = "numpy",
    ):
        from repro.core.feasibility import constraint_signature

        if not variable_objects:
            raise UnsupportedBatchEvaluation("no variable objects to enumerate")
        kind = getattr(workload, "kind", "dss")
        if kind not in ("dss", "oltp"):
            raise UnsupportedBatchEvaluation(f"unsupported workload kind {kind!r}")
        signature = constraint_signature(constraint)
        if signature is None:
            raise UnsupportedBatchEvaluation(
                f"constraint type {type(constraint).__name__} is not vectorizable"
            )
        self._constraint_kind, self._constraint_data = signature
        if self._constraint_kind == "response_time" and kind != "dss":
            raise UnsupportedBatchEvaluation("response-time SLA on a non-DSS workload")
        if self._constraint_kind == "throughput" and kind != "oltp":
            raise UnsupportedBatchEvaluation("throughput SLA on a non-OLTP workload")

        self.system = system
        self.estimator = estimator
        self.workload = workload
        self.kind = kind
        self.concurrency = getattr(workload, "concurrency", 1)
        self.class_names: Tuple[str, ...] = tuple(system.class_names)
        self.classes: List[StorageClass] = [system[name] for name in self.class_names]
        self.num_classes = len(self.class_names)

        self.variable_objects = list(variable_objects)
        self.var_names = [obj.name for obj in self.variable_objects]
        self._var_index = {name: k for k, name in enumerate(self.var_names)}
        self.var_sizes = [obj.size_gb for obj in self.variable_objects]
        self.pinned = [(obj.name, system.class_names.index(class_name), obj.size_gb)
                       for obj, class_name in pinned]
        self._pinned_classes = {obj.name: class_name for obj, class_name in pinned}

        self.prices = [storage_class.price_cents_per_gb_hour for storage_class in self.classes]
        self.capacities = np.array(
            [storage_class.capacity_gb for storage_class in self.classes]
        )

        self.kernel = kernel if isinstance(kernel, Kernel) else get_kernel(kernel)
        # C-contiguous operand arrays the kernels consume (values identical
        # to the list attributes above, which stay for compatibility).
        self._sizes_arr = np.array(self.var_sizes, dtype=float)
        self._prices_arr = np.array(self.prices, dtype=float)
        self._pinned_class_arr = np.array(
            [class_index for _, class_index, _ in self.pinned], dtype=np.int64
        )
        self._pinned_size_arr = np.array(
            [size_gb for _, _, size_gb in self.pinned], dtype=float
        )

        self.cache = _adopt_cache(cache, estimator, self.concurrency)
        self.stats = BatchEvalStats()

        if kind == "oltp":
            self._oltp = _OltpMixModel(workload, estimator, self.concurrency)
            self._instances = [query for query, _ in self._oltp.mix]
        else:
            self._instances = list(workload.queries)
        self._service_times = _ServiceTimeTable(self.concurrency)
        self._oltp_aggregates: Dict[tuple, Tuple[float, float]] = {}

        self._fully_warmed = False
        self._tables: Dict[str, _QueryTable] = {}
        self._template_order: List[_QueryTable] = []
        for query in self._instances:
            if query.name in self._tables:
                continue
            var_columns = [
                self._var_index[name]
                for name in self.cache.signature_objects(query)
                if name in self._var_index
            ]
            table = _QueryTable(query, var_columns, self.num_classes)
            self._tables[query.name] = table
            self._template_order.append(table)

    # ------------------------------------------------------------------
    # Estimate-table warm-up and TOC lower bounds (parallel engine support)
    # ------------------------------------------------------------------
    def warm_signatures(self, max_signatures_per_query: int = 262_144) -> bool:
        """Pre-populate every query's estimate table over its full signature
        subspace.

        A query's estimate depends only on the classes of its signature
        objects, so its table has at most ``M^k`` slots (``k`` = signature
        objects that are variable columns).  Warming them all makes the
        (possibly shared) estimate cache a complete, read-only lookup
        structure: parallel workers reconstructing an evaluator from it never
        call the optimizer again, and :meth:`toc_floor_factor` can derive a
        sound workload-time lower bound from the now-exhaustive per-query
        response tables.

        Queries whose subspace exceeds ``max_signatures_per_query`` are left
        to lazy on-demand estimation (correct, just not pre-warmed).  Returns
        True when every table was fully warmed.
        """
        fully = True
        for table in self._template_order:
            positions = len(table.var_columns)
            subspace = self.num_classes**positions
            if subspace > max_signatures_per_query:
                fully = False
                continue
            rows = np.zeros((subspace, len(self.var_names)), dtype=np.int64)
            if positions:
                _, combos = next(
                    iter_assignment_chunks(positions, self.num_classes, chunk_size=subspace)
                )
                rows[:, table.var_columns] = combos
            self._slots_for(table, rows)
        self._fully_warmed = fully
        return fully

    def dense_response_tables(self) -> Dict[str, np.ndarray]:
        """Code-indexed ``float64`` response arrays, one per query table.

        Eligible only for fully warmed DSS evaluators: ``warm_signatures``
        enumerates each table's signature subspace in mixed-radix order, so
        slot ``s`` holds exactly signature code ``s`` and the per-query
        ``response_ms`` list densifies into an array indexed directly by
        code.  These arrays are the payload
        :class:`repro.core.shm_tables.SharedEstimateTables` publishes to
        workers.  Raises :class:`UnsupportedBatchEvaluation` when the
        evaluator is OLTP (aggregation needs full ``ExecutionResult`` I/O
        maps, not just response times) or not fully warmed.
        """
        if self.kind != "dss":
            raise UnsupportedBatchEvaluation(
                "dense response tables require a DSS workload; OLTP aggregation "
                "consumes full per-execution I/O maps"
            )
        if not self._fully_warmed:
            raise UnsupportedBatchEvaluation(
                "dense response tables require a fully warmed evaluator"
            )
        views: Dict[str, np.ndarray] = {}
        for table in self._template_order:
            if table.dense_response is not None:
                views[table.query.name] = table.dense_response
                continue
            subspace = self.num_classes ** len(table.var_columns)
            if len(table.response_ms) != subspace:
                raise UnsupportedBatchEvaluation(
                    f"table for {table.query.name!r} holds {len(table.response_ms)} "
                    f"slots, expected the full {subspace}-signature subspace"
                )
            for code in range(subspace):
                if table.code_to_slot.get(code) != code:
                    raise UnsupportedBatchEvaluation(
                        f"table for {table.query.name!r} is not in dense "
                        "(code == slot) order"
                    )
            views[table.query.name] = np.ascontiguousarray(table.response_ms, dtype=float)
        return views

    def install_dense_tables(self, views: Mapping[str, np.ndarray]) -> None:
        """Adopt code-indexed response arrays (typically shared-memory views).

        After installation ``_slots_for`` returns raw signature codes (slot ==
        code), no estimator or cache traffic happens for these queries, and
        the evaluator counts as fully warmed.  The arrays are read-only
        lookups; the values are bitwise the ones ``warm_signatures`` would
        have produced, so scoring is unchanged bit for bit.
        """
        if self.kind != "dss":
            raise UnsupportedBatchEvaluation(
                "dense response tables require a DSS workload"
            )
        for table in self._template_order:
            view = views.get(table.query.name)
            if view is None:
                raise UnsupportedBatchEvaluation(
                    f"missing dense table for query {table.query.name!r}"
                )
            subspace = self.num_classes ** len(table.var_columns)
            if view.shape != (subspace,):
                raise UnsupportedBatchEvaluation(
                    f"dense table for {table.query.name!r} has shape {view.shape}, "
                    f"expected ({subspace},)"
                )
        for table in self._template_order:
            table.dense_response = views[table.query.name]
        self._fully_warmed = True

    def toc_floor_factor(self) -> float:
        """A factor ``f`` with ``TOC(row) >= layout_cost(row) * f`` for every
        candidate row, or ``0.0`` when no sound bound is available.

        For DSS workloads the workload-time factor of the TOC is bounded from
        below by the sum of each query instance's minimum response time over
        its (fully warmed) signature subspace; for OLTP the throughput is
        bounded from above through the closed-loop population bound at the
        minimum achievable mix response time.  A small multiplicative margin
        absorbs floating-point rounding so the bound errs on the sound side;
        the incumbent pruning that consumes it compares strictly, so the
        margin never prunes a true optimum.
        """
        if not self._fully_warmed:
            return 0.0
        margin = 1.0 - 1e-9
        if self.kind == "dss":
            total_ms = 0.0
            for query in self._instances:
                table = self._tables[query.name]
                if table.dense_response is not None:
                    if table.dense_response.size == 0:
                        return 0.0
                    total_ms += float(table.dense_response.min())
                elif table.response_ms:
                    total_ms += min(table.response_ms)
                else:
                    return 0.0
            return ((total_ms / MS_PER_SECOND) / SECONDS_PER_HOUR) * margin
        response_lb_ms = 0.0
        for query, weight in self._oltp.mix:
            table = self._tables[query.name]
            if not table.response_ms:
                return 0.0
            response_lb_ms += (weight / self._oltp.total_weight) * min(table.response_ms)
        response_lb_ms = max(response_lb_ms * margin, 1e-9)
        model = self._oltp.model
        tasks_per_hour_ub = (
            model.efficiency
            * (model.concurrency / (response_lb_ms / MS_PER_SECOND))
            * SECONDS_PER_HOUR
            * self._oltp.measured_fraction
        )
        if not (tasks_per_hour_ub > 0.0 and np.isfinite(tasks_per_hour_ub)):
            return 0.0
        return (1.0 / tasks_per_hour_ub) * margin

    # ------------------------------------------------------------------
    # Candidate materialization helpers
    # ------------------------------------------------------------------
    def assignment_for_row(self, row: np.ndarray) -> Dict[str, str]:
        """The object -> class-name dict of one candidate (scalar dict order:
        pinned objects first, then variable objects in column order)."""
        assignment = {name: self.class_names[class_index]
                      for name, class_index, _ in self.pinned}
        for column, name in enumerate(self.var_names):
            assignment[name] = self.class_names[int(row[column])]
        return assignment

    def _placement_for_row(self, row: np.ndarray) -> Dict[str, StorageClass]:
        placement = {name: self.classes[class_index]
                     for name, class_index, _ in self.pinned}
        for column, name in enumerate(self.var_names):
            placement[name] = self.classes[int(row[column])]
        return placement

    # ------------------------------------------------------------------
    # Space, capacity and layout cost
    # ------------------------------------------------------------------
    def _space_used(self, var_assign: np.ndarray) -> np.ndarray:
        """Per-candidate space per class, accumulated in scalar-path order
        (pinned objects first, then variable objects column by column)."""
        return self.kernel.accumulate_space(
            var_assign,
            self.num_classes,
            self._sizes_arr,
            self._pinned_class_arr,
            self._pinned_size_arr,
        )

    def _layout_cost(self, used: np.ndarray) -> np.ndarray:
        """``C(L) = sum_j p_j * S_j`` with the scalar per-class add order."""
        return self.kernel.layout_cost(used, self._prices_arr)

    # ------------------------------------------------------------------
    # Per-query signature slots
    # ------------------------------------------------------------------
    def _slots_for(self, table: _QueryTable, sub_assign: np.ndarray) -> np.ndarray:
        """Slot index per candidate row, estimating new signatures on demand.

        New signatures are resolved through the (possibly shared) estimate
        cache in first-occurrence (enumeration) order; on a cold cache the
        optimizer's plan cache is therefore populated by exactly the same
        placements, in the same order, as in the scalar search, and a warm
        cache serves bitwise-identical executions without re-estimating.

        With a dense (shared-memory) response table installed the slot *is*
        the signature code -- :meth:`install_dense_tables` views are indexed
        by code, so the per-chunk ``np.unique`` + dict translation (and any
        estimator traffic) disappears entirely.
        """
        codes = self.kernel.signature_codes(sub_assign, table.var_columns, table.weights)
        if table.dense_response is not None:
            return codes
        unique_codes, first_rows, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        missing = [position for position, code in enumerate(unique_codes)
                   if int(code) not in table.code_to_slot]
        if missing:
            for position in sorted(missing, key=lambda p: first_rows[p]):
                code = int(unique_codes[position])
                row = sub_assign[first_rows[position]]
                placement = self._placement_for_row(row)
                misses_before = self.cache.misses
                execution = self.cache.get(table.query, placement)
                self.stats.estimator_calls += self.cache.misses - misses_before
                slot = len(table.response_ms)
                table.code_to_slot[code] = slot
                table.response_ms.append(execution.response_time_ms)
                table.executions.append(execution)
                table.touched_classes.append(
                    {
                        name: placement[name].name
                        for name in self.cache.signature_objects(table.query)
                        if name in placement
                    }
                )
        slot_of_unique = np.array(
            [table.code_to_slot[int(code)] for code in unique_codes], dtype=np.intp
        )
        return slot_of_unique[inverse]

    # ------------------------------------------------------------------
    # OLTP aggregation (per unique per-query slot tuple)
    # ------------------------------------------------------------------
    def _aggregate_oltp(self, slot_tuple: tuple) -> Tuple[float, float]:
        """``(tasks_per_hour, transactions_per_minute)`` for one slot tuple.

        Replicates ``WorkloadEstimator._run_mix`` (same merge and iteration
        order) from cached per-query executions; candidates sharing the slot
        tuple share the result bit for bit.
        """
        cached = self._oltp_aggregates.get(slot_tuple)
        if cached is not None:
            return cached
        class_of: Dict[str, str] = {}
        slots = iter(slot_tuple)

        def execution_for(query):
            slot = next(slots)
            table = self._tables[query.name]
            class_of.update(table.touched_classes[slot])
            return table.executions[slot]

        io_by_object, _, avg_response_ms, avg_cpu_ms = _replay_mix(
            self._oltp.mix, self._oltp.total_weight, execution_for
        )
        busy_by_class = _busy_time_by_class(
            io_by_object,
            lambda object_name: self.system[class_of[object_name]],
            self._service_times,
        )
        throughput = self._oltp.model.estimate(
            response_time_ms=max(avg_response_ms, 1e-9),
            busy_time_by_class_ms=busy_by_class,
            cpu_time_ms=avg_cpu_ms,
        )
        tasks_per_hour = throughput.transactions_per_hour * self._oltp.measured_fraction
        transactions_per_minute = (
            throughput.transactions_per_minute * self._oltp.measured_fraction
        )
        result = (tasks_per_hour, transactions_per_minute)
        self._oltp_aggregates[slot_tuple] = result
        self.stats.oltp_aggregations += 1
        return result

    # ------------------------------------------------------------------
    # Chunk evaluation
    # ------------------------------------------------------------------
    def evaluate_chunk(self, var_assign: np.ndarray) -> ChunkEvaluation:
        """Score one batch of candidates.

        ``var_assign`` is a ``(batch, len(variable_objects))`` integer matrix
        of class indices.  Returns per-candidate TOC (``inf`` where the
        capacity pre-filter rejected the candidate) plus feasibility masks.
        The chunk's wall time accumulates into ``stats.eval_s`` (two
        ``perf_counter`` calls per ~4096-candidate chunk -- noise).
        """
        started = time.perf_counter()
        try:
            return self._evaluate_chunk(var_assign)
        finally:
            self.stats.eval_s += time.perf_counter() - started

    def _evaluate_chunk(self, var_assign: np.ndarray) -> ChunkEvaluation:
        var_assign = np.asarray(var_assign, dtype=np.int64)
        batch = var_assign.shape[0]
        self.stats.candidates += batch
        self.stats.chunks += 1

        used = self._space_used(var_assign)
        capacity_ok = (used <= self.capacities[None, :]).all(axis=1)
        toc_cents = np.full(batch, np.inf)
        feasible = np.zeros(batch, dtype=bool)
        rows = np.flatnonzero(capacity_ok)
        self.stats.capacity_feasible += int(rows.size)
        if rows.size == 0:
            return ChunkEvaluation(toc_cents, capacity_ok, feasible)

        cost = self._layout_cost(used[rows])
        sub_assign = var_assign[rows]
        slots = {
            table.query.name: self._slots_for(table, sub_assign)
            for table in self._template_order
        }

        if self.kind == "dss":
            total_ms = np.zeros(rows.size)
            performance_ok = np.ones(rows.size, dtype=bool)
            caps = self._constraint_data if self._constraint_kind == "response_time" else None
            response_arrays = {
                table.query.name: table.response_array()
                for table in self._template_order
            }
            for query in self._instances:
                cap = caps.get(query.name) if caps is not None else None
                self.kernel.add_responses(
                    total_ms,
                    response_arrays[query.name],
                    slots[query.name],
                    float("nan") if cap is None else float(cap),
                    performance_ok,
                )
            toc_cents[rows] = cost * ((total_ms / MS_PER_SECOND) / SECONDS_PER_HOUR)
            feasible[rows] = performance_ok
        else:
            slot_matrix = np.stack(
                [slots[query.name] for query, _ in self._oltp.mix], axis=1
            )
            unique_rows, inverse = np.unique(slot_matrix, axis=0, return_inverse=True)
            tasks = np.empty(unique_rows.shape[0])
            tpm = np.empty(unique_rows.shape[0])
            for position, slot_row in enumerate(unique_rows):
                tasks[position], tpm[position] = self._aggregate_oltp(
                    tuple(int(slot) for slot in slot_row)
                )
            toc_cents[rows] = cost / tasks[inverse]
            if self._constraint_kind == "throughput":
                feasible[rows] = tpm[inverse] >= self._constraint_data
            else:
                feasible[rows] = True

        self.stats.feasible += int(feasible.sum())
        return ChunkEvaluation(toc_cents, capacity_ok, feasible)


# ---------------------------------------------------------------------------
# MILP coefficient tables
# ---------------------------------------------------------------------------

def group_placement_coefficients(
    groups, system: StorageSystem, profiles
) -> Tuple[List[tuple], np.ndarray, np.ndarray]:
    """Cost and I/O-time coefficient vectors for every (group, placement).

    Returns ``(candidates, costs, times)`` where ``candidates`` lists
    ``(group, placement)`` pairs -- per group, every
    ``itertools.product(class_names, repeat=len(group))`` placement in
    product order -- and the arrays hold the layout-cost and Eq.-1
    time-share coefficients the MILP objective/constraints consume.  Service times are looked up once per
    (class, I/O type) instead of once per candidate; accumulation order
    matches the scalar helpers bit for bit.
    """
    class_names = tuple(system.class_names)
    num_classes = len(class_names)
    prices = np.array([system[name].price_cents_per_gb_hour for name in class_names])
    service_times = _ServiceTimeTable(profiles.concurrency)

    def service_ms(class_index: int, io_type: IOType) -> float:
        return service_times.latency_ms(system[class_names[class_index]], io_type)

    candidates: List[tuple] = []
    cost_parts: List[np.ndarray] = []
    time_parts: List[np.ndarray] = []
    for group in groups:
        size = len(group.members)
        _, digits = next(iter_assignment_chunks(size, num_classes,
                                                chunk_size=num_classes**size))
        count = digits.shape[0]
        costs = np.zeros(count)
        for column, member in enumerate(group.members):
            costs += prices[digits[:, column]] * member.size_gb
        times = np.zeros(count)
        for position in range(count):
            placement = tuple(class_names[int(digit)] for digit in digits[position])
            profile = profiles.profile_for(placement)
            total_ms = 0.0
            for column, member in enumerate(group.members):
                by_type = profile.get(member.name, {})
                for io_type, io_count in by_type.items():
                    total_ms += io_count * service_ms(int(digits[position, column]), io_type)
            times[position] = total_ms
            candidates.append((group, placement))
        cost_parts.append(costs)
        time_parts.append(times)
    return candidates, np.concatenate(cost_parts), np.concatenate(time_parts)
