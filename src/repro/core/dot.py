"""The DOT heuristic optimizer (paper Section 3.1, Procedure 1) plus validation.

DOT starts from the layout that places every object on the most expensive
storage class, then applies candidate group moves in priority order.  Each
candidate layout is evaluated with the storage-aware optimizer's estimates
(``estimateTOC``); feasible layouts advance the walk and the cheapest feasible
layout seen so far is remembered.  The result may be marked infeasible, in
which case the caller (the :class:`~repro.core.advisor.ProvisioningAdvisor`)
relaxes the SLA and retries, as in the paper's Figure 2 loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.context import make_incremental_evaluator
from repro.core.feasibility import FeasibilityChecker, FeasibilityResult
from repro.core.layout import Layout
from repro.core.moves import Move, enumerate_moves
from repro.core.profiles import WorkloadProfileSet
from repro.core.toc import TOCModel, TOCReport
from repro.exceptions import InfeasibleLayoutError
from repro.objects import DatabaseObject, ObjectGroup, group_objects
from repro.sla.constraints import PerformanceConstraint
from repro.storage.storage_class import StorageSystem


@dataclass
class MoveTrace:
    """One step of the DOT walk, for introspection and tests."""

    move_description: str
    accepted: bool
    feasible: bool
    toc_cents: float
    feasibility: str


@dataclass
class DOTResult:
    """Outcome of one DOT optimization run.

    ``timed_out`` marks a walk cut short by a ``deadline_s``: the result is
    then the best feasible layout of the moves scored before the deadline --
    feasible by construction whenever any candidate was -- rather than of
    the full move list.
    """

    layout: Optional[Layout]
    toc_report: Optional[TOCReport]
    feasible: bool
    evaluated_layouts: int
    elapsed_s: float
    history: List[MoveTrace] = field(default_factory=list)
    initial_report: Optional[TOCReport] = None
    timed_out: bool = False

    @property
    def toc_cents(self) -> float:
        """TOC of the recommended layout (``inf`` when infeasible)."""
        if self.toc_report is None:
            return float("inf")
        return self.toc_report.toc_cents

    def require_layout(self) -> Layout:
        """The recommended layout, or raise if the search was infeasible."""
        if self.layout is None:
            raise InfeasibleLayoutError(
                "DOT found no feasible layout; relax the performance constraint and retry"
            )
        return self.layout


class DOTOptimizer:
    """Implements Procedure 1 (the optimization phase) and the validation phase.

    Parameters
    ----------
    objects:
        The placeable database objects ``O``.
    system:
        The storage system ``D`` with prices and capacities.
    estimator:
        Workload estimator (``estimate_workload`` / ``run_workload``).
    constraint:
        Absolute SLA constraint ``T``; ``None`` disables the performance check.
    initial_class:
        Class of the initial layout ``L_0`` (defaults to the most expensive).
    capacity_relaxed_walk:
        The paper's Procedure 1 only ever advances through fully feasible
        layouts, which can wedge the walk when ``L_0`` itself violates an
        imposed capacity limit (the Section 4.4.3 / 4.5.3 experiments).  With
        this flag (default), moves that strictly reduce the total capacity
        excess while keeping the SLA satisfied also advance the walk -- they
        are never reported as the recommendation unless fully feasible.
    walk_mode:
        How the walk advances from one layout to the next.  ``"improvement"``
        (default) only advances when the candidate's estimated TOC beats the
        best feasible TOC seen so far, which reproduces the paper's empirical
        DOT-vs-exhaustive-search gap (within ~16 %).  ``"paper"`` follows
        Procedure 1 literally and advances on *every* feasible move; because
        later (worse-scored) moves of the same group then overwrite earlier
        ones, the literal walk ends measurably further from the optimum --
        the grouping ablation benchmark quantifies the difference.
    cost_override:
        Optional alternative layout-cost function (discrete-sized cost model).
    independent_objects:
        Treat every object as its own group (the per-object enumeration of
        Canim et al. [10]).  Used by the grouping ablation benchmark; the
        paper argues -- and the ablation confirms -- that this misses the
        table/index plan interactions DOT's object groups capture.
    incremental:
        Evaluate candidate layouts through the
        :class:`~repro.core.batch_eval.IncrementalWorkloadEvaluator`
        (default): per-query estimates are cached by touched-placement
        signature, so a move re-scores only the queries touching the moved
        group.  Results are bitwise identical to full evaluation; the walk
        falls back to it automatically for configurations the fast path
        cannot represent.
    estimate_cache:
        Optional shared :class:`~repro.core.batch_eval.QueryEstimateCache`.
        Passing one cache to several optimizers (DOT and ES of the same
        study, or the online advisor's successive epochs) reuses every
        per-(query, signature) estimate across them; results are unchanged.
        Ignored by the scalar fallback path.
    """

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        constraint: Optional[PerformanceConstraint] = None,
        initial_class: Optional[str] = None,
        capacity_relaxed_walk: bool = True,
        cost_override=None,
        independent_objects: bool = False,
        walk_mode: str = "improvement",
        incremental: bool = True,
        estimate_cache=None,
    ):
        if walk_mode not in ("improvement", "paper"):
            raise ValueError(f"unknown walk_mode {walk_mode!r}")
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.constraint = constraint
        self.initial_class = initial_class or system.most_expensive().name
        self.capacity_relaxed_walk = capacity_relaxed_walk
        self.walk_mode = walk_mode
        self.incremental = incremental
        self.estimate_cache = estimate_cache
        if independent_objects:
            self.groups = [
                ObjectGroup(key=obj.name, members=(obj,)) for obj in self.objects
            ]
        else:
            self.groups = group_objects(self.objects)
        self.toc_model = TOCModel(estimator, cost_override=cost_override)
        self.checker = FeasibilityChecker(constraint)

    # ------------------------------------------------------------------
    def initial_layout(self) -> Layout:
        """The paper's ``L_0``: every object on the most expensive class."""
        return Layout.uniform(self.objects, self.system, self.initial_class,
                              name=f"All {self.initial_class}")

    def enumerate_moves(self, profiles: WorkloadProfileSet) -> List[Move]:
        """Candidate moves sorted by priority score (Procedure 2)."""
        return enumerate_moves(self.groups, self.system, profiles,
                               initial_class=self.initial_class)

    def _candidate_evaluator(self, workload, constraint):
        """The per-candidate TOC evaluator for one optimization run.

        Prefers the signature-cached incremental evaluator (bitwise-identical
        results, far less Python per move); falls back to the full
        ``TOCModel.evaluate`` for workload kinds or constraint types the fast
        path cannot represent.
        """
        if self.incremental:
            fast = make_incremental_evaluator(
                self.estimator,
                workload,
                self.toc_model,
                cache=self.estimate_cache,
                constraint=constraint,
                require_checkable_constraint=True,
            )
            if fast is not None:
                return fast.evaluate
        return lambda candidate: self.toc_model.evaluate(candidate, workload, mode="estimate")

    # ------------------------------------------------------------------
    def optimize(
        self,
        workload,
        profiles: WorkloadProfileSet,
        constraint: Optional[PerformanceConstraint] = None,
        initial_layout: Optional[Layout] = None,
        deadline_s: Optional[float] = None,
    ) -> DOTResult:
        """Run the optimization phase (Procedure 1) and return the best layout.

        ``deadline_s`` bounds the walk's wall-clock time: the move loop
        stops at the first move boundary past the deadline and returns the
        best feasible layout found so far with ``timed_out=True``.

        ``initial_layout`` warm-starts the walk from an existing layout
        instead of the paper's all-most-expensive ``L_0`` -- the online
        advisor passes the currently deployed layout so that a small
        workload drift only has to explore moves *away* from it.  Move
        priorities are still scored relative to ``L_0`` (Procedure 2's
        scores are layout-independent rankings), and each candidate move
        re-places a whole group, so applying them to a warm layout is
        exactly as sound as applying them to ``L_0``.  Note the warm walk
        can never return a group to the all-``initial_class`` placement
        (such moves save nothing relative to ``L_0`` and are never
        enumerated); callers needing that escape hatch re-run cold.
        """
        active_constraint = constraint if constraint is not None else self.constraint
        checker = self.checker if constraint is None else FeasibilityChecker(constraint)
        started = time.perf_counter()
        evaluate_candidate = self._candidate_evaluator(workload, active_constraint)

        current = initial_layout if initial_layout is not None else self.initial_layout()
        initial_report = self.toc_model.evaluate(current, workload, mode="estimate")
        initial_check = checker.check(current, initial_report.run_result)

        best_layout: Optional[Layout] = None
        best_report: Optional[TOCReport] = None
        if initial_check.feasible:
            best_layout, best_report = current, initial_report

        deadline = time.monotonic() + deadline_s if deadline_s is not None else None
        history: List[MoveTrace] = []
        evaluated = 1
        timed_out = False
        moves = self.enumerate_moves(profiles)
        for move in moves:
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                break
            candidate = move.apply_to(current)
            report = evaluate_candidate(candidate)
            evaluated += 1
            check = checker.check(candidate, report.run_result)

            accepted = False
            if check.feasible:
                improves = best_report is None or report.toc_cents < best_report.toc_cents
                if self.walk_mode == "paper" or improves:
                    current = candidate
                    accepted = True
                if improves:
                    best_layout, best_report = candidate, report
            elif (
                self.capacity_relaxed_walk
                and check.performance_ok
                and not check.capacity_ok
                and candidate.excess_gb() < current.excess_gb()
            ):
                # Advance toward capacity feasibility without recording the
                # (still infeasible) layout as a recommendation.
                current = candidate
                accepted = True

            history.append(
                MoveTrace(
                    move_description=move.describe(),
                    accepted=accepted,
                    feasible=check.feasible,
                    toc_cents=report.toc_cents,
                    feasibility=check.describe(),
                )
            )

        elapsed = time.perf_counter() - started
        if best_layout is not None:
            best_layout = best_layout.renamed("DOT")
            # The incremental evaluator omits dispensable I/O bookkeeping from
            # candidate run results, so the recommendation is re-evaluated in
            # full; the numbers are identical, only the I/O fields are richer.
            best_report = self.toc_model.evaluate(best_layout, workload, mode="estimate")
        return DOTResult(
            layout=best_layout,
            toc_report=best_report,
            feasible=best_layout is not None,
            evaluated_layouts=evaluated,
            elapsed_s=elapsed,
            history=history,
            initial_report=initial_report,
            timed_out=timed_out,
        )

    # ------------------------------------------------------------------
    def validate(
        self,
        layout: Layout,
        workload,
        constraint: Optional[PerformanceConstraint] = None,
    ) -> Tuple[FeasibilityResult, TOCReport]:
        """The validation phase: a simulated test run of the recommended layout."""
        checker = self.checker if constraint is None else FeasibilityChecker(constraint)
        report = self.toc_model.evaluate(layout, workload, mode="run")
        check = checker.check(layout, report.run_result)
        return check, report
