"""The shared evaluation context of the placement solvers.

Every solver of the paper's optimization problem -- DOT's greedy walk, the
exhaustive search, the MILP relaxation and the Object Advisor baseline --
evaluates candidate layouts against the *same* five ingredients: the
placeable objects, a storage system, a workload, a workload estimator, and
an (optional) SLA constraint.  Before this module each solver received those
ingredients through its own constructor signature and re-implemented the
same plumbing around them: building a :class:`~repro.core.toc.TOCModel`,
resolving a relative SLA against the all-most-expensive reference layout,
profiling the workload over baseline layouts, sharing a
:class:`~repro.core.batch_eval.QueryEstimateCache`, and deciding whether the
vectorized batch/incremental evaluators apply or the scalar reference path
must run.

:class:`EvaluationContext` owns all of that once.  The solver layer
(:mod:`repro.core.solver`) consumes contexts through the uniform
``Solver.solve(context)`` protocol, and the scenario registry
(:mod:`repro.scenarios`) builds them from named experiment configurations.

The scalar-vs-batch fallback decision lives in two module-level helpers --
:func:`make_batch_evaluator` and :func:`make_incremental_evaluator` -- that
the solvers share instead of re-implementing: both return ``None`` when the
configuration cannot take the vectorized path, and callers fall back to the
scalar reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.batch_eval import (
    BatchLayoutEvaluator,
    IncrementalWorkloadEvaluator,
    QueryEstimateCache,
    UnsupportedBatchEvaluation,
)
from repro.core.feasibility import FeasibilityChecker, constraint_signature
from repro.core.layout import Layout
from repro.core.profiler import WorkloadProfiler
from repro.core.profiles import WorkloadProfileSet
from repro.core.toc import TOCModel, TOCReport
from repro.objects import DatabaseObject
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.storage.storage_class import StorageSystem


# ---------------------------------------------------------------------------
# The scalar-vs-batch fallback decision (shared by every solver)
# ---------------------------------------------------------------------------

def make_batch_evaluator(
    variable_objects: Sequence[DatabaseObject],
    system: StorageSystem,
    estimator,
    workload,
    *,
    pinned: Sequence[Tuple[DatabaseObject, str]] = (),
    constraint: Optional[PerformanceConstraint] = None,
    cache: Optional[QueryEstimateCache] = None,
    toc_model: Optional[TOCModel] = None,
    kernel: str = "numpy",
) -> Optional[BatchLayoutEvaluator]:
    """A :class:`BatchLayoutEvaluator`, or ``None`` for the scalar fallback.

    ``None`` signals a configuration the vectorized path cannot represent: a
    layout-cost override (``toc_model.vectorizable_layout_cost`` is false), a
    constraint type without a batch signature, or a workload kind the
    evaluator rejects.  Callers run the scalar reference path instead --
    results are identical either way.
    """
    if toc_model is not None and not toc_model.vectorizable_layout_cost:
        return None
    try:
        return BatchLayoutEvaluator(
            variable_objects,
            system,
            estimator,
            workload,
            pinned=pinned,
            constraint=constraint,
            cache=cache,
            kernel=kernel,
        )
    except UnsupportedBatchEvaluation:
        return None


def make_incremental_evaluator(
    estimator,
    workload,
    toc_model: TOCModel,
    *,
    cache: Optional[QueryEstimateCache] = None,
    collect_io: bool = False,
    constraint: Optional[PerformanceConstraint] = None,
    require_checkable_constraint: bool = False,
) -> Optional[IncrementalWorkloadEvaluator]:
    """An :class:`IncrementalWorkloadEvaluator`, or ``None`` for the fallback.

    With ``require_checkable_constraint=True`` (DOT's move walk) the fast
    path is additionally gated on :func:`constraint_signature` recognising
    the constraint type: the walk's feasibility check consumes the candidate
    run results, and an exotic constraint subclass could read I/O fields the
    incremental evaluator does not populate.  Consumers that never feed the
    results to a constraint (the online advisor's accounting) skip the gate.
    """
    if require_checkable_constraint and constraint_signature(constraint) is None:
        return None
    try:
        return IncrementalWorkloadEvaluator(
            estimator, workload, toc_model, cache=cache, collect_io=collect_io
        )
    except UnsupportedBatchEvaluation:
        return None


# ---------------------------------------------------------------------------
# The context
# ---------------------------------------------------------------------------

@dataclass
class EvaluationContext:
    """Everything a solver needs to score layouts for one experiment.

    Instances are normally created through :meth:`build` (which resolves a
    relative SLA into an absolute constraint) or through the scenario
    registry's :meth:`~repro.scenarios.ScenarioBundle.context`.  The context
    owns the single :class:`~repro.core.batch_eval.QueryEstimateCache` every
    solver run against it shares, so a (query, touched-placement-signature)
    pair is estimated at most once across profiling, DOT's walk and the
    exhaustive enumeration -- exactly the sharing the figure drivers used to
    wire by hand.

    ``profiles`` is computed lazily on first use (DOT and the MILP need it,
    ES and the Object Advisor do not) and may be supplied eagerly by callers
    that profile through a different mode (the TPC-C test-run profiling).
    """

    objects: List[DatabaseObject]
    system: StorageSystem
    estimator: object
    workload: object
    constraint: Optional[PerformanceConstraint] = None
    #: The relative SLA the constraint was resolved from (``None`` when the
    #: constraint was given absolutely); solvers that need the ratio itself
    #: (the MILP's I/O-time budget) read it here.
    sla: Optional[RelativeSLA] = None
    cost_override: Optional[Callable[[Layout], float]] = None
    profile_mode: str = "estimate"
    #: Profile on the single all-most-expensive baseline only (the paper's
    #: pruned TPC-C profiling) instead of the full baseline enumeration.
    single_baseline_profile: bool = False
    profiles: Optional[WorkloadProfileSet] = None
    estimate_cache: Optional[QueryEstimateCache] = None
    toc_model: TOCModel = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.objects = list(self.objects)
        if self.toc_model is None:
            self.toc_model = TOCModel(self.estimator, cost_override=self.cost_override)
        if self.estimate_cache is None:
            self.estimate_cache = QueryEstimateCache(self.estimator, self.concurrency)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        workload,
        *,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = None,
        constraint_mode: str = "estimate",
        cost_override: Optional[Callable[[Layout], float]] = None,
        profile_mode: str = "estimate",
        single_baseline_profile: bool = False,
        profiles: Optional[WorkloadProfileSet] = None,
        estimate_cache: Optional[QueryEstimateCache] = None,
    ) -> "EvaluationContext":
        """Build a context, resolving a relative SLA into an absolute cap.

        ``constraint_mode="estimate"`` (default) resolves the SLA against
        optimizer estimates of the reference layout -- what a search should
        consume so estimates are compared against estimate-derived caps.
        ``"run"`` resolves against a simulated run (the reporting-side
        convention); note run-mode evaluations advance the estimator's noise
        RNG.
        """
        context = cls(
            objects=list(objects),
            system=system,
            estimator=estimator,
            workload=workload,
            sla=sla if isinstance(sla, RelativeSLA) else None,
            cost_override=cost_override,
            profile_mode=profile_mode,
            single_baseline_profile=single_baseline_profile,
            profiles=profiles,
            estimate_cache=estimate_cache,
        )
        context.constraint = context.resolve_constraint(sla, mode=constraint_mode)
        return context

    # ------------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """The workload's concurrency (1 when it does not declare one)."""
        return getattr(self.workload, "concurrency", 1)

    def reference_layout(self) -> Layout:
        """The best-performing reference: everything on the priciest class."""
        return Layout.uniform(self.objects, self.system, self.system.most_expensive().name)

    def resolve_constraint(
        self,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]],
        mode: str = "estimate",
    ) -> Optional[PerformanceConstraint]:
        """Resolve a relative SLA against the reference layout (or pass through)."""
        if sla is None or isinstance(sla, PerformanceConstraint):
            return sla
        reference = self.toc_model.evaluate(self.reference_layout(), self.workload, mode=mode)
        return sla.resolve(reference.run_result)

    def checker(self) -> FeasibilityChecker:
        """A feasibility checker for the context's constraint."""
        return FeasibilityChecker(self.constraint)

    def evaluate(self, layout: Layout, mode: str = "estimate") -> TOCReport:
        """TOC report of one layout for the context's workload."""
        return self.toc_model.evaluate(layout, self.workload, mode=mode)

    # ------------------------------------------------------------------
    def profiler(self) -> WorkloadProfiler:
        """A profiler over the context's objects sharing its estimate cache."""
        return WorkloadProfiler(
            self.objects, self.system, self.estimator, estimate_cache=self.estimate_cache
        )

    def get_profiles(self) -> WorkloadProfileSet:
        """The workload profiles, computed on first use and then cached."""
        if self.profiles is None:
            profiler = self.profiler()
            patterns = (
                [profiler.single_baseline_pattern()]
                if self.single_baseline_profile
                else None
            )
            self.profiles = profiler.profile(
                self.workload, mode=self.profile_mode, patterns=patterns
            )
        return self.profiles

    # ------------------------------------------------------------------
    def batch_evaluator(
        self,
        variable_objects: Optional[Sequence[DatabaseObject]] = None,
        pinned: Sequence[Tuple[DatabaseObject, str]] = (),
    ) -> Optional[BatchLayoutEvaluator]:
        """A batch evaluator over the context (``None`` -> scalar fallback)."""
        return make_batch_evaluator(
            self.objects if variable_objects is None else variable_objects,
            self.system,
            self.estimator,
            self.workload,
            pinned=pinned,
            constraint=self.constraint,
            cache=self.estimate_cache,
            toc_model=self.toc_model,
        )

    def incremental_evaluator(
        self, collect_io: bool = False, require_checkable_constraint: bool = False
    ) -> Optional[IncrementalWorkloadEvaluator]:
        """An incremental evaluator over the context (``None`` -> fallback)."""
        return make_incremental_evaluator(
            self.estimator,
            self.workload,
            self.toc_model,
            cache=self.estimate_cache,
            collect_io=collect_io,
            constraint=self.constraint,
            require_checkable_constraint=require_checkable_constraint,
        )
