"""Sharded, pruned, resumable parallel enumeration over layout spaces.

The paper's exhaustive search (Sections 4.4.3 and 4.5.3) is the quality
yardstick for DOT, but a literal ``M^N`` enumeration caps the object count:
the TPC-C study restricts ES to three hot tables because the full 19-object
x 3-class space has ``3^19 ~ 1.16e9`` layouts.  The batch engine
(:mod:`repro.core.batch_eval`) made one core fast; this module removes the
single-core ceiling:

* **Sharding** -- the mixed-radix assignment index range ``[0, M^N)`` is cut
  into contiguous shards of whole enumeration subtrees and distributed over a
  ``multiprocessing`` pool.  Each worker reconstructs its evaluator from a
  pickled :class:`EnumerationSpec` whose :class:`~repro.core.batch_eval.
  QueryEstimateCache` was pre-warmed (read-only) by the parent, then streams
  :func:`~repro.core.batch_eval.iter_assignment_chunks` over its own index
  sub-ranges -- workers never call the optimizer.
* **Branch-and-bound pruning** -- a per-prefix *capacity* bound skips whole
  subtrees whose cheapest completion already violates capacity (the prefix
  space usage is an exact intermediate of the evaluator's accumulation, and
  object sizes only ever add, so the bound is sound bit for bit), and an
  *incumbent-TOC* bound discards chunks whose storage-cost lower bound times
  the workload-time floor already exceeds the best TOC seen by any worker
  (shared through a ``multiprocessing.Value``).
* **Resumability** -- progress is tracked per shard in a picklable
  :class:`SearchProgress`; feeding a partial progress object back into
  :meth:`ParallelEnumerationEngine.run` skips completed shards and continues
  from the recorded incumbent.
* **Fault tolerance** -- shard processing is idempotent and deterministic,
  so the coordinator recovers from worker failures by re-running shards:
  a failed shard is retried with exponential backoff (bounded by
  ``shard_max_retries``), a worker that dies mid-shard (detected because its
  shard exceeds ``shard_timeout_s``) has the shard re-queued on the
  replenished pool, and duplicate completions are ignored
  (:meth:`SearchProgress.record` is keyed by shard id).  A hard wall-clock
  ``deadline_s`` bounds the whole run: on expiry the pool is torn down, the
  checkpoint is flushed and :class:`~repro.exceptions.SolverTimeoutError` is
  raised carrying the partial progress (whose incumbent is the exact best of
  the completed shards).  The engine is a context manager and always
  terminates/joins its pool -- on success, error and ``KeyboardInterrupt``
  alike.  Every recovery action is recorded in ``SearchProgress.incidents``.
  Checkpoints are checksum-guarded: a truncated or garbled file raises
  :class:`~repro.exceptions.CheckpointCorruptionError` naming the path
  (:meth:`SearchProgress.load_or_quarantine` renames it aside and redoes the
  affected shards from scratch).  Faults themselves are injectable through
  :class:`repro.resilience.FaultPlan` for deterministic chaos tests.

Exactness contract
------------------
The scalar/batch exhaustive search returns the *first* candidate (in
enumeration order) achieving the minimum TOC.  Every shard therefore reports
``(toc, global_index)`` of its best candidate and the reduction is
lexicographic, which reproduces "minimum TOC, smallest index" regardless of
shard completion order.  Pruning is strict: a subtree is only skipped when
*every* completion is capacity-infeasible (TOC ``inf`` on the serial path),
and a chunk only when its TOC lower bound is *strictly* above the incumbent
-- equal-TOC candidates are never discarded, so tie-breaking matches the
serial path exactly and the returned layout and TOC are bitwise identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.batch_eval import (
    BatchEvalStats,
    BatchLayoutEvaluator,
    QueryEstimateCache,
    UnsupportedBatchEvaluation,
    accumulate_space_used,
    iter_assignment_chunks,
)
from repro.core.shm_tables import SharedEstimateTables
from repro.exceptions import (
    CheckpointCorruptionError,
    ConfigurationError,
    ShardFailureError,
    SolverTimeoutError,
)
from repro.objects import DatabaseObject
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.resilience.faults import FaultInjector, FaultPlan, fire_shard_fault
from repro.sla.constraints import PerformanceConstraint
from repro.storage.storage_class import StorageSystem


# ---------------------------------------------------------------------------
# Specs and results
# ---------------------------------------------------------------------------

@dataclass
class EnumerationSpec:
    """Picklable recipe from which a worker rebuilds its batch evaluator.

    The ``cache`` travels in the same pickle payload as the ``estimator`` it
    was built from, so the object-graph identity check in ``_adopt_cache``
    still holds after the round trip; a fully pre-warmed cache turns each
    worker's evaluator into a pure lookup structure.
    """

    variable_objects: Sequence[DatabaseObject]
    system: StorageSystem
    estimator: object
    workload: object
    pinned: Sequence[Tuple[DatabaseObject, str]]
    constraint: Optional[PerformanceConstraint]
    cache: Optional[QueryEstimateCache]
    chunk_size: int = 4096
    #: Chunk-scoring kernel name (see :mod:`repro.core.kernels`); travels in
    #: the spec so pool workers resolve the same kernel the coordinator did.
    kernel: str = "numpy"

    def build_evaluator(self) -> BatchLayoutEvaluator:
        return BatchLayoutEvaluator(
            self.variable_objects,
            self.system,
            self.estimator,
            self.workload,
            pinned=self.pinned,
            constraint=self.constraint,
            cache=self.cache,
            kernel=self.kernel,
        )


@dataclass
class SearchProgress:
    """Resumable checkpoint of a (possibly interrupted) engine run.

    The object is picklable; persisting it between runs and passing it back
    to :meth:`ParallelEnumerationEngine.run` continues the enumeration from
    the completed-shard set and the recorded incumbent instead of starting
    over.  The final result is independent of how the run was split.

    For multi-hour full-space runs (the paper's ``3^19`` studies) the
    checkpoint also round-trips through JSON on disk -- :meth:`save` /
    :meth:`load` -- so an interrupted run is resumable from another process
    (or after a reboot) without relying on pickle compatibility.  Non-finite
    floats (the ``inf`` incumbent of a run that has not found a feasible
    layout yet) use the ``json`` module's ``Infinity`` extension, which the
    loader parses back.

    The on-disk form is integrity-guarded: the payload carries a SHA-256
    checksum over its canonical rendering, so a truncated write, bit rot or
    hand edits surface as :class:`~repro.exceptions.CheckpointCorruptionError`
    (with the offending path) instead of a bare ``json`` traceback or -- far
    worse -- a silently wrong resume.  :meth:`load_or_quarantine` converts a
    corrupt checkpoint into a fresh start by renaming the damaged file aside
    (``<name>.quarantined``), which makes the engine redo the affected shards
    rather than trust them.
    """

    total_shards: int
    completed: Set[int] = field(default_factory=set)
    best_toc: float = float("inf")
    best_index: int = -1
    best_row: Optional[Tuple[int, ...]] = None
    evaluated: int = 0
    stats: BatchEvalStats = field(default_factory=BatchEvalStats)
    #: Enumeration geometry stamp (space size and prefix depth).  Shard ids
    #: only identify subtree ranges under one geometry, so resuming is
    #: refused when the stamp disagrees with the engine's.
    space: Optional[int] = None
    prefix_depth: Optional[int] = None
    #: Recovery actions taken during the run (retries, re-queues, deadline
    #: aborts); persisted with the checkpoint for post-mortems.
    incidents: List[str] = field(default_factory=list)

    #: Schema stamp of the JSON checkpoint layout (2 added the payload
    #: checksum and the incident log).
    FORMAT_VERSION = 2

    @property
    def finished(self) -> bool:
        return len(self.completed) >= self.total_shards

    # ------------------------------------------------------------------
    @staticmethod
    def _payload_checksum(payload: Dict[str, object]) -> str:
        """SHA-256 over the canonical rendering of a checksum-less payload."""
        body = {key: value for key, value in payload.items() if key != "checksum"}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_json(self) -> Dict[str, object]:
        """The checkpoint as a JSON-serialisable dictionary (checksummed)."""
        payload = {
            "format": self.FORMAT_VERSION,
            "total_shards": self.total_shards,
            "completed": sorted(self.completed),
            "best_toc": self.best_toc,
            "best_index": self.best_index,
            "best_row": list(self.best_row) if self.best_row is not None else None,
            "evaluated": self.evaluated,
            "stats": dataclasses.asdict(self.stats),
            "space": self.space,
            "prefix_depth": self.prefix_depth,
            "incidents": list(self.incidents),
        }
        payload["checksum"] = self._payload_checksum(payload)
        return payload

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the checkpoint to ``path`` as JSON; returns the path.

        The write is atomic (temp file + ``os.replace`` in the same
        directory), so a crash mid-save -- the very interruption scenario
        checkpoints exist for -- can never destroy the previous good
        checkpoint.
        """
        path = Path(path)
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(payload)
        os.replace(scratch, path)
        return path

    @classmethod
    def from_json(cls, data: Dict[str, object],
                  source: Optional[Path] = None) -> "SearchProgress":
        """Rebuild a checkpoint from :meth:`to_json` output.

        Schema violations (wrong format version, unknown stats fields) raise
        :class:`ConfigurationError`; a failed payload checksum raises
        :class:`CheckpointCorruptionError` naming ``source``.
        """
        version = data.get("format")
        if version != cls.FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported SearchProgress checkpoint format {version!r} "
                f"(expected {cls.FORMAT_VERSION})"
            )
        known_stats = {f.name for f in dataclasses.fields(BatchEvalStats)}
        raw_stats = dict(data.get("stats") or {})
        unknown = sorted(set(raw_stats) - known_stats)
        if unknown:
            raise ConfigurationError(
                f"SearchProgress checkpoint has unknown stats fields {unknown}"
            )
        recorded = data.get("checksum")
        if recorded != cls._payload_checksum(data):
            raise CheckpointCorruptionError(
                "SearchProgress checkpoint failed its payload checksum"
                + ("" if recorded is not None else " (checksum missing)"),
                path=source,
            )
        best_row = data.get("best_row")
        return cls(
            total_shards=int(data["total_shards"]),
            completed={int(shard) for shard in data.get("completed", ())},
            best_toc=float(data.get("best_toc", float("inf"))),
            best_index=int(data.get("best_index", -1)),
            best_row=tuple(int(v) for v in best_row) if best_row is not None else None,
            evaluated=int(data.get("evaluated", 0)),
            stats=BatchEvalStats(**raw_stats),
            space=int(data["space"]) if data.get("space") is not None else None,
            prefix_depth=(
                int(data["prefix_depth"]) if data.get("prefix_depth") is not None else None
            ),
            incidents=[str(entry) for entry in data.get("incidents", ())],
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SearchProgress":
        """Load a checkpoint previously written by :meth:`save`.

        Unreadable files, invalid JSON and malformed field values all raise
        :class:`CheckpointCorruptionError` carrying the offending path;
        schema-version mismatches keep raising :class:`ConfigurationError`
        (they indicate an incompatible writer, not a damaged file).
        """
        path = Path(path)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            # Garbled bytes (a torn sector) are as fatal as an unreadable
            # file: both mean the checkpoint cannot be trusted.
            raise CheckpointCorruptionError(
                f"checkpoint is unreadable: {exc}", path=path
            ) from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptionError(
                f"checkpoint is not valid JSON: {exc}", path=path
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointCorruptionError(
                f"checkpoint JSON is a {type(data).__name__}, not an object", path=path
            )
        try:
            return cls.from_json(data, source=path)
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointCorruptionError(
                f"checkpoint fields are malformed: {exc}", path=path
            ) from exc

    @classmethod
    def load_or_quarantine(cls, path: Union[str, Path]) -> Optional["SearchProgress"]:
        """Load a checkpoint, quarantining it if corrupt.

        Returns the checkpoint, or ``None`` when the file is missing or
        corrupt.  A corrupt file is renamed aside to ``<name>.quarantined``
        (preserved for post-mortems) so the caller restarts from scratch --
        the quarantine-and-redo path: no shard recorded by a damaged
        checkpoint is ever trusted.  Schema-version mismatches still raise:
        an old-format checkpoint is a configuration problem, not corruption.
        """
        path = Path(path)
        if not path.exists():
            return None
        try:
            return cls.load(path)
        except CheckpointCorruptionError:
            os.replace(path, path.with_name(path.name + ".quarantined"))
            return None

    # ------------------------------------------------------------------
    def record(self, outcome: "_ShardOutcome") -> None:
        """Fold one shard outcome into the checkpoint (lexicographic best)."""
        if outcome.shard_id in self.completed:
            return
        self.completed.add(outcome.shard_id)
        self.evaluated += outcome.evaluated
        self.stats.merge(outcome.stats)
        if outcome.best_row is not None and (
            outcome.best_toc < self.best_toc
            or (outcome.best_toc == self.best_toc and outcome.best_index < self.best_index)
        ):
            self.best_toc = outcome.best_toc
            self.best_index = outcome.best_index
            self.best_row = outcome.best_row


@dataclass
class _ShardOutcome:
    """What one shard reports back to the coordinator."""

    shard_id: int
    best_toc: float
    best_index: int
    best_row: Optional[Tuple[int, ...]]
    evaluated: int
    stats: BatchEvalStats
    #: Serialized per-shard span (worker-local tracing buffer; ``None`` when
    #: tracing is disabled).  The coordinator grafts it into its live tree;
    #: checkpoints ignore it (spans are observability, not search state).
    span: Optional[Dict[str, object]] = None


# ---------------------------------------------------------------------------
# Pruning bounds
# ---------------------------------------------------------------------------

class _PruningBounds:
    """Vectorized prefix-level bounds for one enumeration geometry.

    ``prefix_depth`` columns are fixed per subtree; the remaining columns are
    free.  Sound rules (see module docstring):

    * capacity: the prefix's per-class space usage is an exact intermediate of
      the evaluator's accumulation order (pinned objects first, then columns
      left to right), and completions only add non-negative sizes, so a class
      already over capacity stays over capacity in every completion;
    * residual fit: if the total size of the free objects exceeds the summed
      remaining slack of all classes (plus a conservative epsilon), no
      completion can fit;
    * cost: the cheapest completion places every free object on the cheapest
      class, giving a storage-cost lower bound for the incumbent-TOC test.
    """

    def __init__(self, evaluator: BatchLayoutEvaluator, prefix_depth: int):
        self.prefix_depth = prefix_depth
        self.num_classes = evaluator.num_classes
        self.capacities = evaluator.capacities.astype(float)
        self.prices = np.array(evaluator.prices, dtype=float)
        self.pinned = [(class_index, size_gb) for _, class_index, size_gb in evaluator.pinned]
        self.prefix_sizes = evaluator.var_sizes[:prefix_depth]
        residual_sizes = np.array(evaluator.var_sizes[prefix_depth:], dtype=float)
        self.residual_total_gb = float(residual_sizes.sum())
        min_price = float(self.prices.min()) if self.prices.size else 0.0
        self.residual_min_cost = float(residual_sizes.sum() * min_price)
        self.slack_epsilon = 1e-9 * (1.0 + self.residual_total_gb + float(self.capacities.sum()))
        # Chunk-level bound operands: full-width sizes, mixed-radix place
        # values (python ints -- 3^19 era magnitudes), pinned storage cost,
        # and the min-price cost of every column suffix.
        self.num_objects = len(evaluator.var_names)
        self.all_sizes = np.array(evaluator.var_sizes, dtype=float)
        self.place_values = [
            self.num_classes ** (self.num_objects - 1 - column)
            for column in range(self.num_objects)
        ]
        self.pinned_cost = float(
            sum(size_gb * float(self.prices[class_index])
                for class_index, size_gb in self.pinned)
        )
        suffix = np.zeros(self.num_objects + 1)
        suffix[:-1] = np.cumsum(self.all_sizes[::-1])[::-1] * min_price
        self.suffix_min_cost = suffix

    def prefix_space(self, prefix_matrix: np.ndarray) -> np.ndarray:
        """Per-subtree per-class space usage of the fixed prefix columns.

        Shares :func:`~repro.core.batch_eval.accumulate_space_used` with the
        evaluator, so the prefix usage is by construction an exact
        intermediate of the full candidate accumulation.
        """
        return accumulate_space_used(
            prefix_matrix, self.num_classes, self.prefix_sizes, self.pinned
        )

    def admissible(self, prefix_matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(keep_mask, cost_lower_bound)`` for a batch of subtree prefixes."""
        used = self.prefix_space(prefix_matrix)
        overflow = (used > self.capacities[None, :]).any(axis=1)
        slack = np.clip(self.capacities[None, :] - used, 0.0, None).sum(axis=1)
        cannot_fit = self.residual_total_gb > slack + self.slack_epsilon
        keep = ~(overflow | cannot_fit)
        cost_lb = (used @ self.prices + self.residual_min_cost) * (1.0 - 1e-9)
        return keep, cost_lb

    def chunk_cost_lb(self, chunk_start: int, chunk_last: int) -> float:
        """Storage-cost lower bound over the index range
        ``[chunk_start, chunk_last]`` (inclusive).

        A contiguous mixed-radix range shares the common most-significant
        digits of its two endpoints; those columns are *fixed* for every
        index in the range and price at their actual class, while the free
        suffix prices at the cheapest class.  This tightens the per-subtree
        bound (which fixes only ``prefix_depth`` columns) to chunk
        granularity: deep inside a subtree a chunk fixes many more columns.
        The same ``1 - 1e-9`` margin plus the caller's strict comparison
        keep the bound sound regardless of summation order.
        """
        cost = self.pinned_cost
        depth = 0
        lo = chunk_start
        hi = chunk_last
        for column in range(self.num_objects):
            place = self.place_values[column]
            digit_lo = lo // place
            digit_hi = hi // place
            if digit_lo != digit_hi:
                break
            cost += float(self.all_sizes[column]) * float(self.prices[digit_lo])
            lo -= digit_lo * place
            hi -= digit_hi * place
            depth = column + 1
        return (cost + float(self.suffix_min_cost[depth])) * (1.0 - 1e-9)


# ---------------------------------------------------------------------------
# Shard processing (runs in workers and in the in-process fallback)
# ---------------------------------------------------------------------------

class _Incumbent:
    """Best-so-far TOC holder; process-local fallback for serial runs."""

    def __init__(self, initial: float = float("inf")):
        self.value = initial

    def get(self) -> float:
        return self.value

    def offer(self, toc: float) -> None:
        if toc < self.value:
            self.value = toc


class _SharedIncumbent:
    """Best-so-far TOC shared across workers via ``multiprocessing.Value``."""

    def __init__(self, shared_value):
        self.shared = shared_value

    def get(self) -> float:
        with self.shared.get_lock():
            return self.shared.value

    def offer(self, toc: float) -> None:
        with self.shared.get_lock():
            if toc < self.shared.value:
                self.shared.value = toc


def _process_shard(
    evaluator: BatchLayoutEvaluator,
    bounds: _PruningBounds,
    incumbent,
    shard_id: int,
    subtree_lo: int,
    subtree_hi: int,
    chunk_size: int,
    toc_floor_factor: float,
    prune: bool,
    *,
    deadline: Optional[float] = None,
    injector: Optional[FaultInjector] = None,
    attempt: int = 0,
    allow_process_kill: bool = True,
    trace_enabled: bool = False,
) -> _ShardOutcome:
    """Enumerate and score the subtrees ``[subtree_lo, subtree_hi)``.

    ``deadline`` is an absolute ``time.monotonic`` instant (comparable
    across processes on Linux); crossing it raises
    :class:`SolverTimeoutError` between prefix batches.  ``injector`` fires
    any fault scheduled for ``(shard_id, attempt)`` before work starts --
    ``allow_process_kill`` is False on the in-process serial path, where a
    hard worker kill is demoted to :class:`ShardFailureError`.
    ``trace_enabled`` records the shard into a worker-local span buffer
    (:attr:`_ShardOutcome.span`) the coordinator merges into its tree; a
    shard that dies mid-flight loses its buffer, and the retry's span plus
    the coordinator's retry event carry the provenance instead.
    """
    if injector is not None:
        fault = injector.shard_fault(shard_id, attempt)
        if fault is not None:
            fire_shard_fault(fault, shard_id, attempt,
                             allow_process_kill=allow_process_kill)
    shard_tracer = trace.Tracer(enabled=trace_enabled)
    shard_span = shard_tracer.start_span(
        f"shard[{shard_id}]", shard_id=shard_id, attempt=attempt,
        subtree_lo=subtree_lo, subtree_hi=subtree_hi,
    )
    num_objects = len(evaluator.var_names)
    num_classes = evaluator.num_classes
    prefix_depth = bounds.prefix_depth
    subtree_size = num_classes ** (num_objects - prefix_depth)

    stats = BatchEvalStats(shards=1)
    evaluator.stats = stats  # chunk evaluations accumulate into the shard delta
    best_toc = float("inf")
    best_index = -1
    best_row: Optional[np.ndarray] = None
    evaluated = 0

    prefix_batch = max(1, chunk_size // 8)
    for prefix_start, prefix_matrix in iter_assignment_chunks(
        prefix_depth, num_classes, prefix_batch, start=subtree_lo, stop=subtree_hi
    ):
        if deadline is not None and time.monotonic() >= deadline:
            raise SolverTimeoutError(
                f"shard {shard_id} crossed the enumeration deadline "
                f"at subtree {prefix_start}/{subtree_hi}"
            )
        if prune:
            keep, cost_lb = bounds.admissible(prefix_matrix)
        else:
            keep = np.ones(prefix_matrix.shape[0], dtype=bool)
            cost_lb = np.zeros(prefix_matrix.shape[0])
        pruned = int((~keep).sum())
        stats.pruned_subtrees += pruned
        stats.pruned_subtree_layouts += pruned * subtree_size
        for offset in np.flatnonzero(keep):
            subtree = prefix_start + int(offset)
            toc_lower_bound = float(cost_lb[offset]) * toc_floor_factor
            subtree_stop = (subtree + 1) * subtree_size
            chunk_start = subtree * subtree_size
            while chunk_start < subtree_stop:
                chunk_stop = min(chunk_start + chunk_size, subtree_stop)
                if prune:
                    current_best = incumbent.get()
                    if toc_lower_bound > current_best:
                        # The incumbent only ever decreases and the bound is
                        # constant per subtree, so no remaining chunk of this
                        # subtree can win: count the rest pruned without
                        # decoding a single row.
                        remaining = subtree_stop - chunk_start
                        stats.pruned_chunks += -(-remaining // chunk_size)
                        stats.pruned_chunk_layouts += remaining
                        break
                    if toc_floor_factor > 0.0:
                        # Chunk-level bound: the chunk's endpoints share more
                        # fixed digits than the subtree prefix, so its cost
                        # floor is tighter -- skip just this chunk when even
                        # that floor cannot beat the incumbent.
                        chunk_bound = (
                            bounds.chunk_cost_lb(chunk_start, chunk_stop - 1)
                            * toc_floor_factor
                        )
                        if chunk_bound > current_best:
                            stats.pruned_chunks += 1
                            stats.pruned_chunk_layouts += chunk_stop - chunk_start
                            chunk_start = chunk_stop
                            continue
                _, chunk = next(iter_assignment_chunks(
                    num_objects, num_classes, chunk_stop - chunk_start,
                    start=chunk_start, stop=chunk_stop,
                ))
                evaluation = evaluator.evaluate_chunk(chunk)
                evaluated += chunk.shape[0]
                index = evaluation.best_index
                if index is not None:
                    toc = float(evaluation.toc_cents[index])
                    global_index = chunk_start + index
                    # Strict-improvement semantics of the serial loop: an
                    # infinite TOC is never adopted, and ties keep the
                    # earlier enumeration index.
                    if toc < best_toc or (toc == best_toc and global_index < best_index):
                        best_toc = toc
                        best_index = global_index
                        best_row = chunk[index].copy()
                        incumbent.offer(toc)
                chunk_start = chunk_stop
    shard_tracer.end_span(
        shard_span, evaluated=evaluated,
        pruned_subtrees=stats.pruned_subtrees, pruned_chunks=stats.pruned_chunks,
        eval_s=stats.eval_s,
    )
    return _ShardOutcome(
        shard_id=shard_id,
        best_toc=best_toc,
        best_index=best_index,
        best_row=tuple(int(v) for v in best_row) if best_row is not None else None,
        evaluated=evaluated,
        stats=stats,
        span=shard_span.to_dict() if trace_enabled else None,
    )


# ---------------------------------------------------------------------------
# Worker bootstrap (module-level so the pool can pickle the entry points)
# ---------------------------------------------------------------------------

_WORKER_STATE: Optional[Dict[str, object]] = None


def _worker_init(payload: bytes, shared_value, prefix_depth: int, toc_floor_factor: float,
                 prune: bool, plan_payload: Optional[bytes] = None,
                 deadline: Optional[float] = None,
                 trace_enabled: bool = False,
                 shm_descriptor: Optional[Dict[str, object]] = None,
                 warm_eagerly: bool = False) -> None:
    """Pool initializer: rebuild the evaluator from the pickled spec once.

    ``deadline`` is an absolute ``time.monotonic`` instant stamped by the
    coordinator; ``CLOCK_MONOTONIC`` is machine-wide on Linux, so workers can
    compare against it directly.  ``plan_payload`` is a pickled
    :class:`~repro.resilience.FaultPlan` for chaos runs (``None`` in
    production).

    Boot cost is measured in three slices -- ``build_s`` (unpickle +
    construct), then **either** ``attach_s`` (map the coordinator's
    shared-memory tables via ``shm_descriptor``) **or** ``warm_s``
    (pre-populate the estimate tables from the pickled cache when
    ``warm_eagerly``; the coordinator sets it iff its own evaluator was
    fully warmed, so warming is pure cache lookups).  The slices ride back
    on the worker's first completed shard outcome.  A failed shm attach
    falls back to the warm path: slower, bitwise-identical.
    """
    global _WORKER_STATE
    boot_started = time.perf_counter()
    spec: EnumerationSpec = pickle.loads(payload)
    evaluator = spec.build_evaluator()
    build_s = time.perf_counter() - boot_started
    warm_s = 0.0
    attach_s = 0.0
    shm_tables: Optional[SharedEstimateTables] = None
    if shm_descriptor is not None:
        attach_started = time.perf_counter()
        try:
            shm_tables = SharedEstimateTables.attach(shm_descriptor)
            evaluator.install_dense_tables(shm_tables.views())
            attach_s = time.perf_counter() - attach_started
        except Exception:
            if shm_tables is not None:
                shm_tables.close()
                shm_tables = None
    warm_hits = 0
    warm_misses = 0
    if shm_tables is None and warm_eagerly:
        warm_started = time.perf_counter()
        hits_before, misses_before = evaluator.cache.hits, evaluator.cache.misses
        evaluator.warm_signatures()
        warm_hits = evaluator.cache.hits - hits_before
        warm_misses = evaluator.cache.misses - misses_before
        warm_s = time.perf_counter() - warm_started
    _WORKER_STATE = {
        "evaluator": evaluator,
        "bounds": _PruningBounds(evaluator, prefix_depth),
        "incumbent": _SharedIncumbent(shared_value),
        "chunk_size": spec.chunk_size,
        "toc_floor_factor": toc_floor_factor,
        "prune": prune,
        "injector": (
            FaultInjector(pickle.loads(plan_payload)) if plan_payload is not None else None
        ),
        "deadline": deadline,
        "trace_enabled": trace_enabled,
        # Keeps the shm mapping alive for the worker's lifetime.
        "shm_tables": shm_tables,
        "boot": {
            "build_s": build_s,
            "warm_s": warm_s,
            "attach_s": attach_s,
            "cache_hits": warm_hits,
            "cache_misses": warm_misses,
            "reported": False,
        },
    }


def _worker_run_shard(task: Tuple[int, int, int, int]) -> _ShardOutcome:
    shard_id, subtree_lo, subtree_hi, attempt = task
    state = _WORKER_STATE
    evaluator: BatchLayoutEvaluator = state["evaluator"]
    # Worker caches are pickled copies the coordinator's metrics fold never
    # sees; measure this attempt's delta so the coordinator can fold it once
    # per (shard_id, attempt) -- SearchProgress.record drops duplicate and
    # retried completions, so stolen/re-run shards cannot double-count.
    hits_before = evaluator.cache.hits
    misses_before = evaluator.cache.misses
    outcome = _process_shard(
        evaluator,
        state["bounds"],
        state["incumbent"],
        shard_id,
        subtree_lo,
        subtree_hi,
        state["chunk_size"],
        state["toc_floor_factor"],
        state["prune"],
        deadline=state["deadline"],
        injector=state["injector"],
        attempt=attempt,
        trace_enabled=bool(state["trace_enabled"]),
    )
    outcome.stats.cache_hits = evaluator.cache.hits - hits_before
    outcome.stats.cache_misses = evaluator.cache.misses - misses_before
    boot = state["boot"]
    if not boot["reported"]:
        boot["reported"] = True
        outcome.stats.build_s += boot["build_s"]
        outcome.stats.warm_s += boot["warm_s"]
        outcome.stats.attach_s += boot["attach_s"]
        outcome.stats.cache_hits += boot["cache_hits"]
        outcome.stats.cache_misses += boot["cache_misses"]
    return outcome


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class ParallelEnumerationEngine:
    """Coordinates the sharded, pruned enumeration of one layout space.

    Parameters
    ----------
    spec:
        The picklable evaluator recipe.  Its estimate cache should be fully
        pre-warmed (``evaluator.warm_signatures()``) before the engine runs so
        workers stay read-only; the engine warms it automatically when given
        a parent evaluator via :meth:`from_evaluator`.
    workers:
        Process count.  ``workers <= 1`` runs the identical sharded/pruned
        algorithm in-process (no pool, no pickling) -- useful for tests and
        for machines without spare cores.
    prefix_depth:
        Number of leading mixed-radix columns that define a prunable subtree.
        Defaults to a depth that yields at least ``8 * workers *
        shards_per_worker`` subtrees (clamped to ``[1, N-1]``) so shards stay
        balanced and the capacity bound gets traction.
    shards_per_worker:
        Oversubscription factor: more shards than workers lets the pool
        balance uneven pruning across processes.
    schedule:
        ``"steal"`` (default) cuts the space into fine-grained shard units
        that idle workers pull dynamically from the coordinator deque --
        dispatches beyond each worker's initial unit are counted as
        *steals* -- so a worker whose subtrees prune away instantly moves on
        to untouched ranges instead of idling behind a static split.
        ``"static"`` reproduces the coarse ``workers * shards_per_worker``
        partition.  Results are bitwise identical either way; checkpoints
        record the unit geometry and refuse cross-schedule resumes.
    steal_units:
        Target number of shard units under ``schedule="steal"``; defaults
        to ``8 * workers * shards_per_worker`` (clamped to the subtree
        count).
    use_shared_memory:
        Publish the coordinator's fully-warmed dense estimate tables
        through ``multiprocessing.shared_memory`` so workers attach views
        instead of re-warming from the pickled cache.  Automatically falls
        back to the pickle path for ineligible evaluators (OLTP, partially
        warmed) or platforms without shared memory.
    prune:
        Disable to enumerate every candidate (the bounds are then skipped
        entirely); results are identical either way.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``/``"spawn"``);
        defaults to the platform default.
    shard_max_retries:
        How often a failed shard is re-attempted before the run gives up
        with :class:`ShardFailureError`.  Shard processing is idempotent and
        deterministic, so a retry is always safe.
    retry_backoff_s:
        Base of the exponential backoff between attempts of the same shard
        (``retry_backoff_s * 2**attempt``).
    shard_timeout_s:
        Dead-worker detection: a shard whose in-flight time exceeds this is
        presumed lost (``multiprocessing.Pool`` replaces a crashed worker
        but silently drops its task) and is re-queued.  ``None`` disables
        the watchdog; set it when workers can die or straggle.
    deadline_s:
        Hard wall-clock budget for the whole run.  On expiry the pool is
        torn down, the checkpoint flushed, and :class:`SolverTimeoutError`
        raised carrying the partial :class:`SearchProgress`.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` injected into shard
        processing for deterministic chaos tests.

    The engine is a context manager: ``with engine: engine.run()``
    guarantees the pool is terminated and joined on success, error and
    ``KeyboardInterrupt`` alike (``run`` itself also tears down in a
    ``finally``; the context manager is belt and braces for callers that
    drive the engine across multiple calls).
    """

    def __init__(
        self,
        spec: EnumerationSpec,
        workers: int = 1,
        prefix_depth: Optional[int] = None,
        shards_per_worker: int = 4,
        prune: bool = True,
        start_method: Optional[str] = None,
        parent_evaluator: Optional[BatchLayoutEvaluator] = None,
        shard_max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        shard_timeout_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        schedule: str = "steal",
        steal_units: Optional[int] = None,
        use_shared_memory: bool = True,
    ):
        if schedule not in ("steal", "static"):
            raise ConfigurationError(
                f"unknown shard schedule {schedule!r} (expected 'steal' or 'static')"
            )
        self.spec = spec
        self.workers = max(1, int(workers))
        self.shards_per_worker = max(1, int(shards_per_worker))
        self.prune = prune
        self.start_method = start_method
        self.shard_max_retries = max(0, int(shard_max_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.shard_timeout_s = shard_timeout_s
        self.deadline_s = deadline_s
        self.fault_plan = fault_plan
        self.schedule = schedule
        self.steal_units = steal_units
        self.use_shared_memory = use_shared_memory
        self._pool = None
        self._shm_tables: Optional[SharedEstimateTables] = None

        self.evaluator = parent_evaluator if parent_evaluator is not None else spec.build_evaluator()
        self.num_objects = len(self.evaluator.var_names)
        self.num_classes = self.evaluator.num_classes
        self.space = self.num_classes**self.num_objects

        if prefix_depth is None:
            prefix_depth = self._default_prefix_depth()
        if not 1 <= prefix_depth <= max(1, self.num_objects - 1):
            raise ConfigurationError(
                f"prefix_depth {prefix_depth} outside [1, {self.num_objects - 1}] "
                f"for {self.num_objects} objects"
            )
        self.prefix_depth = prefix_depth
        self.num_subtrees = self.num_classes**self.prefix_depth
        self.toc_floor_factor = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_evaluator(
        cls,
        evaluator: BatchLayoutEvaluator,
        spec: EnumerationSpec,
        **kwargs,
    ) -> "ParallelEnumerationEngine":
        """Build an engine around an existing (parent) evaluator and warm it."""
        engine = cls(spec, parent_evaluator=evaluator, **kwargs)
        evaluator.warm_signatures()
        engine.toc_floor_factor = evaluator.toc_floor_factor() if engine.prune else 0.0
        return engine

    def _default_prefix_depth(self) -> int:
        if self.num_objects <= 1:
            return 1
        target = 8 * self.workers * self.shards_per_worker
        depth = 1
        while self.num_classes**depth < target and depth < self.num_objects - 1:
            depth += 1
        return depth

    def shard_ranges(self) -> List[Tuple[int, int, int]]:
        """``(shard_id, subtree_lo, subtree_hi)`` for every shard unit.

        Under ``schedule="static"`` this is the coarse
        ``workers * shards_per_worker`` split; under ``schedule="steal"``
        the same contiguous-subtree construction at ~8x finer granularity,
        giving the dynamic dispatcher units small enough that skew-pruned
        ranges cannot strand a worker.
        """
        if self.schedule == "steal":
            target = (
                self.steal_units
                if self.steal_units is not None
                else 8 * self.workers * self.shards_per_worker
            )
            shard_count = min(self.num_subtrees, max(1, int(target)))
        else:
            shard_count = min(self.num_subtrees, self.workers * self.shards_per_worker)
        boundaries = np.linspace(0, self.num_subtrees, shard_count + 1).astype(np.int64)
        return [
            (shard_id, int(boundaries[shard_id]), int(boundaries[shard_id + 1]))
            for shard_id in range(shard_count)
            if boundaries[shard_id] < boundaries[shard_id + 1]
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        progress: Optional[SearchProgress] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ) -> SearchProgress:
        """Enumerate every shard not already completed in ``progress``.

        ``checkpoint_path`` persists the progress to disk (atomically, as
        JSON) after *every* completed shard, so an interrupted multi-hour
        run resumes from the last finished shard instead of from zero:
        ``engine.run(SearchProgress.load(path) if path.exists() else None,
        checkpoint_path=path)``.
        """
        shards = self.shard_ranges()
        if progress is None:
            progress = SearchProgress(total_shards=len(shards), space=self.space,
                                      prefix_depth=self.prefix_depth)
        else:
            mismatches = [
                f"{label} {recorded} != {current}"
                for label, recorded, current in (
                    ("shards", progress.total_shards, len(shards)),
                    ("space", progress.space, self.space),
                    ("prefix_depth", progress.prefix_depth, self.prefix_depth),
                )
                if recorded is not None and recorded != current
            ]
            if mismatches:
                raise ConfigurationError(
                    "progress was recorded under a different enumeration geometry "
                    f"({'; '.join(mismatches)}); resume with the engine configuration "
                    "it was created with"
                )
            progress.space = self.space
            progress.prefix_depth = self.prefix_depth
        pending = [task for task in shards if task[0] not in progress.completed]
        if not pending:
            return progress
        checkpoint = Path(checkpoint_path) if checkpoint_path is not None else None
        deadline = (
            time.monotonic() + self.deadline_s if self.deadline_s is not None else None
        )
        if self.workers <= 1:
            self._run_serial(pending, progress, checkpoint, deadline)
        else:
            self._run_pool(pending, progress, checkpoint, deadline)
        if checkpoint is not None:
            progress.save(checkpoint)
        return progress

    # -- context manager / teardown ------------------------------------
    def __enter__(self) -> "ParallelEnumerationEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Terminate and join the worker pool, if one is live.

        Safe to call repeatedly; a no-op for serial engines.  Runs from
        ``__exit__`` and from ``run``'s ``finally``, so no code path --
        success, exception or ``KeyboardInterrupt`` -- leaks orphaned
        workers.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        shm_tables, self._shm_tables = self._shm_tables, None
        if shm_tables is not None:
            shm_tables.unlink()

    # -- recovery helpers ----------------------------------------------
    def _deadline_abort(self, progress: SearchProgress,
                        checkpoint: Optional[Path]) -> None:
        """Flush the checkpoint and raise the deadline timeout."""
        progress.incidents.append(
            f"deadline of {self.deadline_s}s expired with "
            f"{len(progress.completed)}/{progress.total_shards} shards complete"
        )
        trace.current_span().event(
            "deadline_abort", deadline_s=self.deadline_s,
            completed=len(progress.completed), total=progress.total_shards,
        )
        if checkpoint is not None:
            progress.save(checkpoint)
        raise SolverTimeoutError(
            f"enumeration deadline ({self.deadline_s}s) expired after "
            f"{len(progress.completed)}/{progress.total_shards} shards",
            elapsed_s=self.deadline_s or 0.0,
            progress=progress,
        )

    def _handle_shard_failure(self, exc: BaseException, task, attempt: int,
                              queue, progress: SearchProgress,
                              checkpoint: Optional[Path]) -> None:
        """Retry a failed shard with exponential backoff, or give up."""
        shard_id = task[0]
        if attempt >= self.shard_max_retries:
            progress.incidents.append(
                f"shard {shard_id} failed permanently after {attempt + 1} attempts: {exc}"
            )
            trace.current_span().event(
                "shard_failed", shard_id=shard_id, attempts=attempt + 1,
                error=str(exc),
            )
            if checkpoint is not None:
                progress.save(checkpoint)
            raise ShardFailureError(
                f"shard {shard_id} failed after {attempt + 1} attempts: {exc}",
                shard_id=shard_id,
                attempts=attempt + 1,
            ) from exc
        progress.incidents.append(
            f"shard {shard_id} attempt {attempt} failed ({exc}); retrying"
        )
        trace.current_span().event(
            "shard_retry", shard_id=shard_id, attempt=attempt, error=str(exc),
        )
        if self.retry_backoff_s:
            time.sleep(self.retry_backoff_s * (2 ** attempt))
        queue.append((task, attempt + 1))

    # -- execution paths -----------------------------------------------
    def _run_serial(self, pending, progress: SearchProgress,
                    checkpoint: Optional[Path] = None,
                    deadline: Optional[float] = None) -> None:
        bounds = _PruningBounds(self.evaluator, self.prefix_depth)
        incumbent = _Incumbent(progress.best_toc)
        injector = FaultInjector(self.fault_plan) if self.fault_plan is not None else None
        tracer = trace.get_tracer()
        queue = deque((task, 0) for task in pending)
        while queue:
            task, attempt = queue.popleft()
            shard_id, lo, hi = task
            if deadline is not None and time.monotonic() >= deadline:
                self._deadline_abort(progress, checkpoint)
            try:
                outcome = _process_shard(
                    self.evaluator,
                    bounds,
                    incumbent,
                    shard_id,
                    lo,
                    hi,
                    self.spec.chunk_size,
                    self.toc_floor_factor,
                    self.prune,
                    deadline=deadline,
                    injector=injector,
                    attempt=attempt,
                    allow_process_kill=False,
                    trace_enabled=tracer.enabled,
                )
            except SolverTimeoutError:
                self._deadline_abort(progress, checkpoint)
            except Exception as exc:
                self._handle_shard_failure(exc, task, attempt, queue, progress, checkpoint)
                continue
            if shard_id not in progress.completed:
                tracer.adopt(outcome.span)
            progress.record(outcome)
            if checkpoint is not None:
                progress.save(checkpoint)

    def _attach_shared_tables(self) -> Optional[Dict[str, object]]:
        """Publish the dense estimate tables to shared memory, if eligible.

        Returns the worker attach descriptor, or ``None`` on fallback (OLTP
        evaluators, partially warmed tables, platforms without shm).  Either
        way an ``es.shm_attach`` span records what happened.
        """
        with trace.span("es.shm_attach") as shm_span:
            try:
                self._shm_tables = SharedEstimateTables.build(self.evaluator)
            except (UnsupportedBatchEvaluation, OSError, ImportError, ValueError) as exc:
                shm_span.set(fallback=str(exc) or type(exc).__name__, shm_bytes=0)
                return None
            shm_span.set(
                shm_bytes=self._shm_tables.nbytes,
                tables=self._shm_tables.num_tables,
            )
            obs_metrics.get_metrics().counter("batch.shm_bytes").inc(
                self._shm_tables.nbytes
            )
            return self._shm_tables.descriptor()

    #: Per-steal span events are capped; past the cap only the summary
    #: attributes on the enclosing span grow (big runs steal thousands of
    #: times and the span tree must stay readable).
    _STEAL_EVENT_CAP = 32

    def _run_pool(self, pending, progress: SearchProgress,
                  checkpoint: Optional[Path] = None,
                  deadline: Optional[float] = None) -> None:
        payload = pickle.dumps(self.spec)
        plan_payload = (
            pickle.dumps(self.fault_plan) if self.fault_plan is not None else None
        )
        tracer = trace.get_tracer()
        shm_descriptor = self._attach_shared_tables() if self.use_shared_memory else None
        warm_eagerly = shm_descriptor is None and bool(
            getattr(self.evaluator, "_fully_warmed", False)
        )
        context = multiprocessing.get_context(self.start_method)
        shared_value = context.Value("d", progress.best_toc)
        pool = context.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(payload, shared_value, self.prefix_depth, self.toc_floor_factor,
                      self.prune, plan_payload, deadline, tracer.enabled,
                      shm_descriptor, warm_eagerly),
        )
        self._pool = pool
        dispatched = 0
        steals = 0
        try:
            queue = deque((task, 0) for task in pending)
            in_flight: Dict[int, Tuple[object, Tuple[int, int, int], int, float]] = {}
            while queue or in_flight:
                # Keep the pool saturated with a bounded overhang so a
                # straggler cannot starve dispatch.
                while queue and len(in_flight) < 2 * self.workers:
                    task, attempt = queue.popleft()
                    if task[0] in progress.completed or task[0] in in_flight:
                        continue
                    handle = pool.apply_async(
                        _worker_run_shard, ((task[0], task[1], task[2], attempt),)
                    )
                    in_flight[task[0]] = (handle, task, attempt, time.monotonic())
                    dispatched += 1
                    if self.schedule == "steal" and dispatched > self.workers:
                        # Beyond every worker's initial unit this dispatch is
                        # demand-driven: an idle worker stealing the next
                        # range off the coordinator deque.
                        steals += 1
                        progress.stats.steals += 1
                        if steals <= self._STEAL_EVENT_CAP:
                            trace.current_span().event(
                                "es.steal", shard_id=task[0], attempt=attempt,
                            )
                if deadline is not None and time.monotonic() >= deadline:
                    self._deadline_abort(progress, checkpoint)
                advanced = False
                now = time.monotonic()
                for shard_id in list(in_flight):
                    handle, task, attempt, started = in_flight[shard_id]
                    if handle.ready():
                        del in_flight[shard_id]
                        advanced = True
                        try:
                            outcome = handle.get()
                        except SolverTimeoutError:
                            self._deadline_abort(progress, checkpoint)
                        except Exception as exc:
                            self._handle_shard_failure(
                                exc, task, attempt, queue, progress, checkpoint
                            )
                            continue
                        if outcome.shard_id not in progress.completed:
                            tracer.adopt(outcome.span)
                        progress.record(outcome)
                        if checkpoint is not None:
                            progress.save(checkpoint)
                    elif (self.shard_timeout_s is not None
                          and now - started > self.shard_timeout_s):
                        # Dead-worker detection: the pool replaces a crashed
                        # process but its task never completes.  Abandon the
                        # attempt and re-queue; a late "ghost" completion of
                        # a straggler is harmless because record() is
                        # idempotent per shard id.
                        del in_flight[shard_id]
                        advanced = True
                        timeout_exc = ShardFailureError(
                            f"shard {shard_id} attempt {attempt} exceeded "
                            f"{self.shard_timeout_s}s (worker presumed dead)",
                            shard_id=shard_id,
                            attempts=attempt + 1,
                        )
                        self._handle_shard_failure(
                            timeout_exc, task, attempt, queue, progress, checkpoint
                        )
                if not advanced:
                    time.sleep(0.005)
            trace.current_span().set(
                steals=steals, shard_units=len(pending), schedule=self.schedule,
                shm=shm_descriptor is not None,
            )
        finally:
            self.close()
