"""The Object Advisor (OA) baseline, after Canim et al. [10].

OA places database objects on SSDs to *maximise workload performance* within
a storage budget -- it does not optimise the TOC, and (unlike DOT) its
placement decisions use I/O statistics gathered once on a fixed baseline
layout, so it misses the interaction between plan choice and data layout.
Both properties are reproduced here:

* the workload is profiled once, with every object on the *cheapest* class
  (OA's "everything starts on magnetic disk" assumption);
* each object's benefit is the I/O-time reduction from moving it to a faster
  class, computed from those fixed I/O counts;
* objects are greedily admitted to faster classes in descending
  benefit-per-GB order until each class's capacity (or an explicit budget)
  is exhausted -- the classic fractional-knapsack heuristic of the OA paper,
  generalised to more than two storage tiers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.layout import Layout
from repro.objects import DatabaseObject
from repro.storage.io_profile import IOType
from repro.storage.storage_class import StorageClass, StorageSystem


@dataclass
class ObjectAdvisorResult:
    """Outcome of an Object Advisor recommendation."""

    layout: Layout
    benefits_ms_per_gb: Dict[str, float]
    elapsed_s: float


class ObjectAdvisor:
    """Greedy performance-maximising placement within capacity budgets."""

    def __init__(self, objects: Sequence[DatabaseObject], system: StorageSystem, estimator):
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator

    # ------------------------------------------------------------------
    def _fastest_first(self) -> List[StorageClass]:
        """Storage classes ordered from fastest to slowest for random reads.

        OA's placement targets are ordered by their random-read speed (its
        benefit metric is dominated by random I/O); the slowest class is the
        default home of unpromoted objects.
        """
        return sorted(
            list(self.system),
            key=lambda sc: sc.service_time_ms(IOType.RAND_READ, 1),
        )

    def _object_io_time_ms(
        self, io_counts: Dict[str, Dict[IOType, float]], object_name: str,
        storage_class: StorageClass, concurrency: int
    ) -> float:
        total = 0.0
        for io_type, count in io_counts.get(object_name, {}).items():
            total += count * storage_class.service_time_ms(io_type, concurrency)
        return total

    # ------------------------------------------------------------------
    def recommend(
        self,
        workload,
        budgets_gb: Optional[Dict[str, float]] = None,
    ) -> ObjectAdvisorResult:
        """Produce the OA layout for a workload.

        ``budgets_gb`` optionally caps how much space OA may use on each
        class; by default the class capacities apply.
        """
        started = time.perf_counter()
        ordered = self._fastest_first()
        base_class = ordered[-1]
        concurrency = getattr(workload, "concurrency", 1)

        # Profile once on the all-cheapest baseline (layout-unaware plans).
        baseline = Layout.uniform(self.objects, self.system, base_class.name)
        profile_run = self.estimator.estimate_workload(workload, baseline.placement())
        io_counts = profile_run.io_by_object

        # Benefit of each object: I/O time on the base class minus on the
        # fastest class, per GB of space it would occupy there.
        fastest = ordered[0]
        benefits: Dict[str, float] = {}
        for obj in self.objects:
            base_time = self._object_io_time_ms(io_counts, obj.name, base_class, concurrency)
            fast_time = self._object_io_time_ms(io_counts, obj.name, fastest, concurrency)
            size = max(obj.size_gb, 1e-9)
            benefits[obj.name] = (base_time - fast_time) / size

        assignment = {obj.name: base_class.name for obj in self.objects}
        remaining = {
            sc.name: (budgets_gb or {}).get(sc.name, sc.capacity_gb) for sc in ordered
        }
        # Greedily promote the most beneficial objects to the fastest class
        # with room, skipping the base class (objects already live there).
        promotable = sorted(
            (obj for obj in self.objects if benefits[obj.name] > 0),
            key=lambda obj: benefits[obj.name],
            reverse=True,
        )
        for obj in promotable:
            for storage_class in ordered[:-1]:
                if obj.size_gb <= remaining[storage_class.name]:
                    assignment[obj.name] = storage_class.name
                    remaining[storage_class.name] -= obj.size_gb
                    break

        layout = Layout(self.objects, self.system, assignment, name="OA")
        return ObjectAdvisorResult(
            layout=layout,
            benefits_ms_per_gb=benefits,
            elapsed_s=time.perf_counter() - started,
        )
