"""SLA performance constraints and the performance satisfaction ratio (PSR)."""

from repro.sla.constraints import (
    PerformanceConstraint,
    RelativeSLA,
    ResponseTimeConstraint,
    ThroughputConstraint,
)
from repro.sla.psr import performance_satisfaction_ratio, violations

__all__ = [
    "PerformanceConstraint",
    "RelativeSLA",
    "ResponseTimeConstraint",
    "ThroughputConstraint",
    "performance_satisfaction_ratio",
    "violations",
]
