"""The performance satisfaction ratio (PSR) of Section 4.3.

The PSR of a layout is the fraction of query executions that meet their
relative SLA; the paper reports it in parentheses next to every layout in
Figures 3, 5 and 7.  For throughput workloads the PSR degenerates into a
0/1 indicator (the throughput either meets the floor or it does not), which
is why the paper reports no separate PSR for TPC-C.
"""

from __future__ import annotations

from typing import Tuple

from repro.sla.constraints import PerformanceConstraint


def performance_satisfaction_ratio(constraint: PerformanceConstraint, result) -> float:
    """Fraction (0..1) of constrained query executions that meet their caps."""
    return constraint.check(result).satisfied_fraction


def violations(constraint: PerformanceConstraint, result) -> Tuple[str, ...]:
    """Names of the query executions that violate the constraint."""
    return constraint.check(result).violations
