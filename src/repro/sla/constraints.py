"""Performance constraints (SLAs) on workloads.

The paper expresses SLAs as a *relative* performance target: the workload may
be at most ``1/ratio`` times slower than its best achievable performance,
where "best" means all objects placed on the high-end SSD (Section 2.4 and
4.3).  DSS workloads constrain each query's response time; OLTP workloads
constrain the overall throughput (tpmC).

A :class:`RelativeSLA` is resolved against a baseline workload result into an
absolute :class:`ResponseTimeConstraint` or :class:`ThroughputConstraint`,
which DOT's feasibility check and the PSR report then evaluate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SLAError


@dataclass(frozen=True)
class ConstraintCheck:
    """Result of evaluating a constraint against a workload result."""

    satisfied: bool
    satisfied_fraction: float
    violations: Tuple[str, ...] = ()
    detail: str = ""


class PerformanceConstraint(ABC):
    """Common interface of absolute performance constraints."""

    @abstractmethod
    def check(self, result) -> ConstraintCheck:
        """Evaluate the constraint against a ``WorkloadRunResult``-like object."""

    @abstractmethod
    def relaxed(self, factor: float) -> "PerformanceConstraint":
        """Return a copy loosened by ``factor`` (> 1 loosens); used by refinement."""


@dataclass(frozen=True)
class ResponseTimeConstraint(PerformanceConstraint):
    """Per-query response-time caps (the paper's ``T = {t_i^j}``).

    ``caps_ms`` maps query name to the maximum allowed response time.  A
    workload result satisfies the constraint when *every* execution of every
    capped query finishes within its cap.
    """

    caps_ms: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.caps_ms:
            raise SLAError("response-time constraint needs at least one cap")
        for query_name, cap in self.caps_ms.items():
            if cap <= 0:
                raise SLAError(f"cap for query {query_name!r} must be positive")

    def cap_for(self, query_name: str) -> Optional[float]:
        """The cap for one query, or ``None`` if the query is unconstrained."""
        return self.caps_ms.get(query_name)

    def check(self, result) -> ConstraintCheck:
        """Check every per-query time in ``result.per_query_times_ms``."""
        total = 0
        satisfied = 0
        violated: List[str] = []
        for query_name, time_ms in result.per_query_times_ms:
            cap = self.caps_ms.get(query_name)
            if cap is None:
                continue
            total += 1
            if time_ms <= cap:
                satisfied += 1
            else:
                violated.append(query_name)
        fraction = 1.0 if total == 0 else satisfied / total
        return ConstraintCheck(
            satisfied=not violated,
            satisfied_fraction=fraction,
            violations=tuple(violated),
            detail=f"{satisfied}/{total} query executions within their caps",
        )

    def relaxed(self, factor: float) -> "ResponseTimeConstraint":
        if factor <= 0:
            raise SLAError("relaxation factor must be positive")
        return ResponseTimeConstraint(
            {query: cap * factor for query, cap in self.caps_ms.items()}
        )


@dataclass(frozen=True)
class ThroughputConstraint(PerformanceConstraint):
    """A floor on workload throughput (transactions per minute)."""

    min_transactions_per_minute: float

    def __post_init__(self) -> None:
        if self.min_transactions_per_minute <= 0:
            raise SLAError("throughput floor must be positive")

    def check(self, result) -> ConstraintCheck:
        """Check ``result.transactions_per_minute`` against the floor."""
        tpm = result.transactions_per_minute
        if tpm is None:
            raise SLAError("throughput constraint applied to a non-throughput workload result")
        satisfied = tpm >= self.min_transactions_per_minute
        fraction = min(tpm / self.min_transactions_per_minute, 1.0)
        return ConstraintCheck(
            satisfied=satisfied,
            satisfied_fraction=fraction,
            violations=() if satisfied else (result.workload_name,),
            detail=f"throughput {tpm:.0f} tpm vs floor {self.min_transactions_per_minute:.0f} tpm",
        )

    def relaxed(self, factor: float) -> "ThroughputConstraint":
        if factor <= 0:
            raise SLAError("relaxation factor must be positive")
        return ThroughputConstraint(self.min_transactions_per_minute / factor)


@dataclass(frozen=True)
class RelativeSLA:
    """A relative performance target (paper Sections 2.4 / 4.3).

    ``ratio`` of 0.5 means the workload may run at half the best-case
    performance: response times may be up to ``1 / 0.5 = 2x`` the best-case
    times, or throughput must be at least ``0.5x`` the best-case throughput.
    """

    ratio: float
    metric: str = "response_time"  # or "throughput"

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise SLAError("relative SLA ratio must be in (0, 1]")
        if self.metric not in ("response_time", "throughput"):
            raise SLAError(f"unknown SLA metric {self.metric!r}")

    # ------------------------------------------------------------------
    def resolve_response_time(self, baseline_result) -> ResponseTimeConstraint:
        """Turn the relative target into per-query caps from a baseline run.

        The cap of each query is its *baseline* (best-case) response time
        divided by the ratio; when a query appears several times in the
        baseline workload, its slowest baseline execution is used so the cap
        is attainable.
        """
        caps: Dict[str, float] = {}
        for query_name, time_ms in baseline_result.per_query_times_ms:
            cap = time_ms / self.ratio
            if query_name not in caps or cap > caps[query_name]:
                caps[query_name] = cap
        if not caps:
            raise SLAError("baseline result has no per-query times to resolve the SLA against")
        return ResponseTimeConstraint(caps)

    def resolve_throughput(self, baseline_result) -> ThroughputConstraint:
        """Turn the relative target into a throughput floor from a baseline run."""
        tpm = baseline_result.transactions_per_minute
        if tpm is None or tpm <= 0:
            raise SLAError("baseline result has no throughput to resolve the SLA against")
        return ThroughputConstraint(min_transactions_per_minute=tpm * self.ratio)

    def resolve(self, baseline_result) -> PerformanceConstraint:
        """Resolve against a baseline according to the configured metric."""
        if self.metric == "throughput":
            return self.resolve_throughput(baseline_result)
        return self.resolve_response_time(baseline_result)
