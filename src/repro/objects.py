"""Database objects and object groups (paper Sections 2.2 and 3.2).

A database instance consists of objects -- tables, indexes, temporary space,
logs -- each of which must be placed on exactly one storage class.  DOT's
heuristic treats a table together with its indexes as an *object group* and
considers every placement combination within a group (because moving a table
can flip the optimizer's plan and thereby change how its indexes are used),
while assuming independence across groups.

This module is dependency-free so both the DOT core and the DBMS substrate
can share the same object model without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


class ObjectKind(str, Enum):
    """What kind of database object this is."""

    TABLE = "table"
    INDEX = "index"
    LOG = "log"
    TEMP = "temp"


@dataclass(frozen=True)
class DatabaseObject:
    """A placeable database object.

    Attributes
    ----------
    name:
        Unique object name, e.g. ``"lineitem"`` or ``"lineitem_pkey"``.
    size_gb:
        On-disk size in GB (``s_i`` in the paper).
    kind:
        Table, index, log or temporary space.
    table:
        For indexes, the name of the base table; for tables, their own name.
        Log/temp objects may leave this ``None``.
    """

    name: str
    size_gb: float
    kind: ObjectKind = ObjectKind.TABLE
    table: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("database object name must be non-empty")
        if self.size_gb < 0:
            raise ConfigurationError(f"object {self.name!r} cannot have negative size")

    @property
    def group_key(self) -> str:
        """The grouping key: the owning table, or the object itself if standalone."""
        if self.kind in (ObjectKind.TABLE,):
            return self.name
        if self.table:
            return self.table
        return self.name

    @property
    def is_index(self) -> bool:
        """True if this object is an index."""
        return self.kind is ObjectKind.INDEX

    @property
    def is_table(self) -> bool:
        """True if this object is a base table."""
        return self.kind is ObjectKind.TABLE


@dataclass(frozen=True)
class ObjectGroup:
    """A table together with its indexes (paper Section 3.2).

    Placement combinations are enumerated per group; the order of ``members``
    is significant because a *placement* is a tuple of storage-class names
    parallel to it.
    """

    key: str
    members: Tuple[DatabaseObject, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError(f"object group {self.key!r} must have at least one member")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"object group {self.key!r} has duplicate members")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    @property
    def member_names(self) -> Tuple[str, ...]:
        """Names of the group members in placement order."""
        return tuple(member.name for member in self.members)

    @property
    def size_gb(self) -> float:
        """Total size of the group."""
        return sum(member.size_gb for member in self.members)

    def member(self, name: str) -> DatabaseObject:
        """Look up a member by name."""
        for candidate in self.members:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


def group_objects(objects: Sequence[DatabaseObject]) -> List[ObjectGroup]:
    """Partition objects into groups: each table with its indexes.

    Indexes whose base table is not among ``objects`` form their own
    singleton group, as do logs and temporary spaces.  The group order
    follows the first appearance of each group key in ``objects``; within a
    group the base table comes first, then its indexes in input order.
    """
    names = [obj.name for obj in objects]
    if len(set(names)) != len(names):
        raise ConfigurationError("database object names must be unique")

    table_names = {obj.name for obj in objects if obj.is_table}
    by_key: Dict[str, List[DatabaseObject]] = {}
    key_order: List[str] = []
    for obj in objects:
        key = obj.group_key
        if obj.is_index and obj.table not in table_names:
            key = obj.name  # orphan index: its own group
        if key not in by_key:
            by_key[key] = []
            key_order.append(key)
        by_key[key].append(obj)

    groups: List[ObjectGroup] = []
    for key in key_order:
        members = by_key[key]
        members.sort(key=lambda o: (0 if o.is_table else 1))
        groups.append(ObjectGroup(key=key, members=tuple(members)))
    return groups


def total_size_gb(objects: Iterable[DatabaseObject]) -> float:
    """Total size of a collection of objects in GB."""
    return sum(obj.size_gb for obj in objects)


def objects_by_name(objects: Iterable[DatabaseObject]) -> Dict[str, DatabaseObject]:
    """Index a collection of objects by name."""
    return {obj.name: obj for obj in objects}
