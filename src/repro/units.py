"""Unit conversion helpers shared across the library.

The paper mixes several unit systems: storage prices are quoted in
cents/GB/hour, device latencies in milliseconds per I/O, workloads run for
seconds or hours, and hardware is amortised over months.  Centralising the
conversions here keeps every other module free of magic constants.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Storage sizes
# ---------------------------------------------------------------------------

BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * BYTES_PER_KB
BYTES_PER_GB = 1024 * BYTES_PER_MB

#: Default database page size used by the mini-DBMS substrate (PostgreSQL's 8 KiB).
PAGE_SIZE_BYTES = 8192


def bytes_to_gb(num_bytes: float) -> float:
    """Convert a byte count to gibibytes."""
    return num_bytes / BYTES_PER_GB


def gb_to_bytes(gigabytes: float) -> float:
    """Convert gibibytes to bytes."""
    return gigabytes * BYTES_PER_GB


def mb_to_gb(megabytes: float) -> float:
    """Convert mebibytes to gibibytes."""
    return megabytes / 1024.0


def pages_to_gb(pages: float, page_size_bytes: int = PAGE_SIZE_BYTES) -> float:
    """Convert a page count to gibibytes."""
    return bytes_to_gb(pages * page_size_bytes)


def gb_to_pages(gigabytes: float, page_size_bytes: int = PAGE_SIZE_BYTES) -> float:
    """Convert gibibytes to (fractional) pages."""
    return gb_to_bytes(gigabytes) / page_size_bytes


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

MS_PER_SECOND = 1000.0
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
MINUTES_PER_HOUR = 60.0
HOURS_PER_DAY = 24.0
#: Average hours in a month (365.25 days / 12 months * 24 hours).
HOURS_PER_MONTH = 365.25 * HOURS_PER_DAY / 12.0


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / MS_PER_SECOND


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * SECONDS_PER_HOUR


def months_to_hours(months: float) -> float:
    """Convert an amortisation period expressed in months to hours."""
    return months * HOURS_PER_MONTH


# ---------------------------------------------------------------------------
# Money and energy
# ---------------------------------------------------------------------------

CENTS_PER_DOLLAR = 100.0
WATTS_PER_KILOWATT = 1000.0


def dollars_to_cents(dollars: float) -> float:
    """Convert US dollars to cents."""
    return dollars * CENTS_PER_DOLLAR


def cents_to_dollars(cents: float) -> float:
    """Convert cents to US dollars."""
    return cents / CENTS_PER_DOLLAR


def watts_to_kilowatts(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / WATTS_PER_KILOWATT
