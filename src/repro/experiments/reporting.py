"""Plain-text reporting helpers for the experiment harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.layout import Layout
from repro.experiments.runner import LayoutEvaluation


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 precision: int = 4) -> str:
    """Render a list of rows as a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:.{precision}g}")
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = [
        "  ".join(header.ljust(widths[position]) for position, header in enumerate(headers)),
        "  ".join("-" * widths[position] for position in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[position]) for position, cell in enumerate(row)))
    return "\n".join(lines)


def format_evaluations(evaluations: Sequence[LayoutEvaluation], metric_label: str) -> str:
    """Render layout evaluations as the cost/performance tables of Figures 3-9."""
    headers = ["Layout", metric_label, "TOC (cents)", "Storage (c/h)", "PSR (%)"]
    rows = []
    for evaluation in evaluations:
        rows.append(
            [
                evaluation.layout_name,
                evaluation.performance_value,
                evaluation.toc_cents,
                evaluation.layout_cost_cents_per_hour,
                round(evaluation.psr * 100.0, 1),
            ]
        )
    return format_table(headers, rows)


def format_layout_assignment(layout: Layout) -> str:
    """Render a layout as the per-class object listings of Figure 4 / Table 3."""
    lines = [f"Layout: {layout.name}"]
    for class_name in layout.system.class_names:
        members = layout.objects_on(class_name)
        lines.append(f"  {class_name}:")
        if not members:
            lines.append("    (empty)")
            continue
        for obj in sorted(members, key=lambda o: -o.size_gb):
            lines.append(f"    {obj.name:<24s} {obj.size_gb:8.2f} GB")
    return "\n".join(lines)


def format_comparison(results: Mapping[str, Mapping[str, float]], value_label: str) -> str:
    """Render a nested ``{row: {column: value}}`` mapping as a matrix table."""
    columns: List[str] = []
    for row_values in results.values():
        for column in row_values:
            if column not in columns:
                columns.append(column)
    headers = [value_label] + columns
    rows = []
    for row_name, row_values in results.items():
        rows.append([row_name] + [row_values.get(column, float("nan")) for column in columns])
    return format_table(headers, rows)
