"""The two experimental server boxes of Section 4.1 and their variants."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.storage import catalog as storage_catalog
from repro.storage.pricing import PricingModel
from repro.storage.storage_class import StorageSystem


def box1(pricing: Optional[PricingModel] = None,
         capacity_limits_gb: Optional[Mapping[str, float]] = None) -> StorageSystem:
    """Box 1: HDD RAID 0 + L-SSD + H-SSD, optionally with capacity limits."""
    system = storage_catalog.box1(pricing)
    if capacity_limits_gb:
        system = system.with_capacity_limits(capacity_limits_gb)
    return system


def box2(pricing: Optional[PricingModel] = None,
         capacity_limits_gb: Optional[Mapping[str, float]] = None) -> StorageSystem:
    """Box 2: HDD + L-SSD RAID 0 + H-SSD, optionally with capacity limits."""
    system = storage_catalog.box2(pricing)
    if capacity_limits_gb:
        system = system.with_capacity_limits(capacity_limits_gb)
    return system


def both_boxes(pricing: Optional[PricingModel] = None) -> Dict[str, StorageSystem]:
    """Both boxes keyed by their paper names."""
    return {"Box 1": box1(pricing), "Box 2": box2(pricing)}
