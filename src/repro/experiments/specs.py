"""Declarative experiment specs: the paper's figures as data, not scripts.

This module is the bridge between the figure drivers (:mod:`repro.
experiments.figures`) and the durable results store (:mod:`repro.
experiments.store`).  It defines

* the **experiment kinds** -- the independently executable arms the paper's
  evaluation decomposes into (one TPC-H box/SLA/workload comparison, one
  Figure 8 box, one Figure 9 capacity-limit arm, the Table 1/2 profiles);
* an **executor** per kind that builds its scenario freshly and returns a
  JSON-native payload (bitwise-stable floats, no NaN/inf) split into a
  deterministic ``"data"`` zone, a wall-clock ``"timing"`` zone, and the
  rendered ``"text"`` table;
* the **matrices**: the full paper-scale spec list and the CI-sized small
  one, per figure and as a deduplicated union;
* the **assembly** step that reconstructs every figure/table -- including
  the derived ones (Figure 4 from Figure 3's DOT layouts, Figure 6 from
  Figure 5's, Table 3 from Figure 8's Box 2 runs) -- from stored payloads
  alone.

Executing a spec twice yields an identical ``"data"`` zone (each executor
constructs its own scenario bundle, so the estimator's seeded RNG always
starts from the same state), which is what lets the golden suite assert the
store-driven figures are bitwise-equal to the direct solver path.  The
``"timing"`` zone is honest wall time and therefore excluded from golden
comparisons via :func:`strip_timing`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.experiments.store import ExperimentSpec

#: Seed of the scenario registry's workload estimators; recorded on every
#: spec as provenance (the bundles seed themselves, the value is not threaded).
DEFAULT_SEED = 2011

#: The storage boxes every box-parameterised figure sweeps.
BOXES = ("Box 1", "Box 2")

#: Every figure/table the assembly step can regenerate from a store.
FIGURES = (
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "table1", "table2", "table3",
)

#: TPC-H comparison figures: (workload kind, relative SLA ratio).
_TPCH_FIGURES = {
    "fig3": ("original", 0.5),
    "fig5": ("modified", 0.5),
    "fig7": ("modified", 0.25),
}

#: Figures assembled purely from another figure's stored runs.
_DERIVED = {"fig4": "fig3", "fig6": "fig5", "table3": "fig8"}

#: Scale presets: the paper-scale matrix and the CI-sized small one.
SCALES: Dict[str, Dict[str, object]] = {
    "paper": {
        "scale_factor": 20.0,
        "tpch_repetitions": {"fig3": 3, "fig5": 20, "fig7": 20},
        "warehouses": 300,
        "concurrency": 300,
        "fig9_limits_gb": (None, 21.0),
    },
    "small": {
        "scale_factor": 2.0,
        "tpch_repetitions": {"fig3": 2, "fig5": 2, "fig7": 2},
        "warehouses": 20,
        "concurrency": 100,
        # At 20 warehouses the paper's 21 GB cap no longer binds and tighter
        # caps starve ES of feasible layouts; 2 GB keeps both methods feasible
        # while still exercising the capacity-limited arm.
        "fig9_limits_gb": (None, 2.0),
    },
}


def _scale(name: str) -> Dict[str, object]:
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment scale {name!r}; expected one of {sorted(SCALES)}"
        ) from None


# ---------------------------------------------------------------------------
# Spec constructors (one per experiment kind)
# ---------------------------------------------------------------------------

def tpch_spec(
    box: str,
    sla_ratio: float,
    workload_kind: str,
    scale_factor: float = 20.0,
    repetitions: Optional[int] = None,
) -> ExperimentSpec:
    """One TPC-H cost/performance comparison arm (Figures 3/5/7 unit)."""
    return ExperimentSpec(
        experiment="tpch",
        scenario=f"tpch_{workload_kind}",
        solver="dot+oa+simple",
        seed=DEFAULT_SEED,
        knobs={
            "box": box,
            "sla_ratio": float(sla_ratio),
            "workload_kind": workload_kind,
            "scale_factor": float(scale_factor),
            "repetitions": repetitions,
        },
    )


def fig8_box_spec(
    box: str,
    warehouses: int = 300,
    sla_ratios: Sequence[float] = (0.5, 0.25, 0.125),
    concurrency: int = 300,
) -> ExperimentSpec:
    """One Figure 8 arm: TPC-C DOT + simple layouts on a single box."""
    return ExperimentSpec(
        experiment="fig8_box",
        scenario="tpcc_fig8",
        solver="dot+simple",
        seed=DEFAULT_SEED,
        knobs={
            "box": box,
            "warehouses": int(warehouses),
            "sla_ratios": [float(ratio) for ratio in sla_ratios],
            "concurrency": int(concurrency),
        },
    )


def fig9_arm_spec(
    limit_gb: Optional[float],
    warehouses: int = 300,
    sla_ratio: float = 0.25,
    concurrency: int = 300,
    hot_groups: Optional[Sequence[str]] = ("stock", "order_line", "customer"),
    es_workers: int = 1,
    es_max_layouts: int = 500_000,
) -> ExperimentSpec:
    """One Figure 9 arm: ES vs DOT under a single H-SSD capacity limit."""
    return ExperimentSpec(
        experiment="fig9_arm",
        scenario="fig9_tpcc",
        solver="dot+es",
        seed=DEFAULT_SEED,
        knobs={
            "limit_gb": None if limit_gb is None else float(limit_gb),
            "warehouses": int(warehouses),
            "sla_ratio": float(sla_ratio),
            "concurrency": int(concurrency),
            "hot_groups": None if hot_groups is None else list(hot_groups),
            "es_workers": int(es_workers),
            "es_max_layouts": int(es_max_layouts),
        },
    )


def table1_spec(concurrencies: Sequence[int] = (1, 300)) -> ExperimentSpec:
    """The Table 1 storage-profile micro-benchmark."""
    return ExperimentSpec(
        experiment="table1",
        scenario="microbench",
        solver="none",
        seed=DEFAULT_SEED,
        knobs={"concurrencies": [int(c) for c in concurrencies]},
    )


def table2_spec() -> ExperimentSpec:
    """The Table 2 device-specification listing (pure catalog data)."""
    return ExperimentSpec(
        experiment="table2", scenario="catalog", solver="none", seed=DEFAULT_SEED
    )


# ---------------------------------------------------------------------------
# JSON-native payload builders
# ---------------------------------------------------------------------------

def _number(value) -> Optional[float]:
    """A float fit for the store: ``None`` for missing/NaN/inf values."""
    if value is None:
        return None
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def _evaluation_data(evaluation) -> Dict[str, object]:
    """A :class:`~repro.experiments.runner.LayoutEvaluation` as plain data."""
    return {
        "layout_name": evaluation.layout_name,
        "toc_cents": _number(evaluation.toc_cents),
        "layout_cost_cents_per_hour": _number(evaluation.layout_cost_cents_per_hour),
        "response_time_s": _number(evaluation.response_time_s),
        "transactions_per_minute": _number(evaluation.transactions_per_minute),
        "psr": _number(evaluation.psr),
    }


def _layout_data(layout) -> Dict[str, object]:
    """A :class:`~repro.core.layout.Layout` as plain data."""
    return {
        "name": layout.name,
        "assignment": dict(layout.assignment()),
        "space_used_gb": {
            name: _number(used) for name, used in layout.space_used_gb().items()
        },
        "satisfies_capacity": bool(layout.satisfies_capacity()),
    }


def _solve_data(result) -> Dict[str, object]:
    """The deterministic slice of a :class:`~repro.core.solver.SolveResult`."""
    return {
        "solver": result.solver,
        "feasible": bool(result.feasible),
        "toc_cents": _number(result.toc_cents),
        "psr": _number(result.psr),
        "evaluated_layouts": int(result.evaluated_layouts),
        "degraded": bool(result.stats.degraded),
        "layout": _layout_data(result.layout) if result.layout is not None else None,
    }


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

def _execute_tpch(spec: ExperimentSpec, checkpoint_dir=None) -> Dict[str, object]:
    knobs = spec.knobs
    started = time.perf_counter()
    result = figures.tpch_comparison(
        box_name=knobs["box"],
        sla_ratio=knobs["sla_ratio"],
        workload_kind=knobs["workload_kind"],
        scale_factor=knobs["scale_factor"],
        repetitions=knobs["repetitions"],
    )
    elapsed = time.perf_counter() - started
    oa_layout = result["oa_layout"]
    data = {
        "box": result["box"],
        "workload": result["workload"],
        "sla_ratio": _number(result["sla_ratio"]),
        "evaluations": [_evaluation_data(e) for e in result["evaluations"]],
        "dot_layout": _layout_data(result["dot_layout"]),
        "oa_layout": _layout_data(oa_layout) if oa_layout is not None else None,
    }
    return {"data": data, "timing": {"elapsed_s": elapsed}, "text": result["text"]}


def _execute_fig8_box(spec: ExperimentSpec, checkpoint_dir=None) -> Dict[str, object]:
    knobs = spec.knobs
    started = time.perf_counter()
    result = figures.figure8_box(
        knobs["box"],
        warehouses=knobs["warehouses"],
        sla_ratios=tuple(knobs["sla_ratios"]),
        concurrency=knobs["concurrency"],
    )
    elapsed = time.perf_counter() - started
    dot_data = {}
    dot_timing = {}
    for ratio, outcome in result["dot_results"].items():
        key = f"{ratio:g}"
        dot_data[key] = _solve_data(outcome)
        dot_timing[key] = outcome.elapsed_s
    data = {
        "box": knobs["box"],
        "evaluations": [_evaluation_data(e) for e in result["evaluations"]],
        "dot": dot_data,
    }
    timing = {"elapsed_s": elapsed, "dot_elapsed_s": dot_timing}
    return {"data": data, "timing": timing, "text": result["text"]}


def _execute_fig9_arm(spec: ExperimentSpec, checkpoint_dir=None) -> Dict[str, object]:
    knobs = spec.knobs
    checkpoint_path = None
    if checkpoint_dir is not None:
        from pathlib import Path

        checkpoint_path = Path(checkpoint_dir) / f"es-{spec.signature[:16]}.json"
    started = time.perf_counter()
    entry = figures.figure9_arm(
        knobs["limit_gb"],
        warehouses=knobs["warehouses"],
        sla_ratio=knobs["sla_ratio"],
        concurrency=knobs["concurrency"],
        hot_groups=None if knobs["hot_groups"] is None else tuple(knobs["hot_groups"]),
        es_workers=knobs["es_workers"],
        es_max_layouts=knobs["es_max_layouts"],
        es_checkpoint_path=checkpoint_path,
    )
    elapsed = time.perf_counter() - started
    dot_eval = entry.get("dot_evaluation")
    es_eval = entry.get("es_evaluation")
    data = {
        "limit_gb": knobs["limit_gb"],
        "label": figures.figure9_limit_label(knobs["limit_gb"]),
        "dot": _solve_data(entry["dot"]),
        "es": _solve_data(entry["es"]),
        "dot_evaluation": _evaluation_data(dot_eval) if dot_eval is not None else None,
        "es_evaluation": _evaluation_data(es_eval) if es_eval is not None else None,
    }
    timing = {
        "elapsed_s": elapsed,
        "dot_elapsed_s": entry["dot"].elapsed_s,
        "es_elapsed_s": entry["es"].elapsed_s,
        # The per-arm table with its honest "Search time (s)" column lives
        # here; the deterministic "text" zone below re-renders it without
        # wall-clock values so golden comparisons stay bitwise-stable.
        "table": entry["text"],
    }
    rows = []
    for method in ("dot", "es"):
        evaluation = data[f"{method}_evaluation"]
        if evaluation is None:
            rows.append([method.upper(), "n/a", "n/a"])
        else:
            rows.append([
                method.upper(),
                evaluation["transactions_per_minute"],
                evaluation["toc_cents"],
            ])
    text = format_table(["Method", "tpmC", "TOC (cents/txn)"], rows)
    return {"data": data, "timing": timing, "text": text}


def _execute_table1(spec: ExperimentSpec, checkpoint_dir=None) -> Dict[str, object]:
    started = time.perf_counter()
    result = figures.table1(tuple(spec.knobs["concurrencies"]))
    elapsed = time.perf_counter() - started
    profiles = {
        name: {
            str(concurrency): {
                "seq_read_ms": _number(row.seq_read_ms),
                "rand_read_ms": _number(row.rand_read_ms),
                "seq_write_ms": _number(row.seq_write_ms),
                "rand_write_ms": _number(row.rand_write_ms),
            }
            for concurrency, row in by_concurrency.items()
        }
        for name, by_concurrency in result["profiles"].items()
    }
    data = {
        "prices_cents_per_gb_hour": {
            name: _number(price)
            for name, price in result["prices_cents_per_gb_hour"].items()
        },
        "published_prices": {
            name: _number(price) for name, price in result["published_prices"].items()
        },
        "profiles": profiles,
    }
    return {"data": data, "timing": {"elapsed_s": elapsed}, "text": result["text"]}


def _execute_table2(spec: ExperimentSpec, checkpoint_dir=None) -> Dict[str, object]:
    started = time.perf_counter()
    result = figures.table2()
    elapsed = time.perf_counter() - started
    devices = {
        name: {
            "name": device.name,
            "flash_type": device.flash_type,
            "capacity_gb": _number(device.capacity_gb),
            "interface": device.interface,
            "rpm": device.rpm,
            "cache_mb": device.cache_mb,
            "purchase_cost_usd": _number(device.purchase_cost_usd),
            "power_watts": _number(device.power_watts),
        }
        for name, device in result["devices"].items()
    }
    return {
        "data": {"devices": devices},
        "timing": {"elapsed_s": elapsed},
        "text": result["text"],
    }


#: Executor per experiment kind.
EXECUTORS: Dict[str, Callable[..., Dict[str, object]]] = {
    "tpch": _execute_tpch,
    "fig8_box": _execute_fig8_box,
    "fig9_arm": _execute_fig9_arm,
    "table1": _execute_table1,
    "table2": _execute_table2,
}


def execute(spec: ExperimentSpec, checkpoint_dir=None) -> Dict[str, object]:
    """Run one spec's executor and return its store-ready payload.

    ``checkpoint_dir`` (optional) is where executors with a resumable inner
    search (the Figure 9 parallel ES) persist their per-signature
    :class:`~repro.core.parallel_search.SearchProgress` checkpoints.
    """
    try:
        executor = EXECUTORS[spec.experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment kind {spec.experiment!r}; "
            f"expected one of {sorted(EXECUTORS)}"
        ) from None
    return executor(spec, checkpoint_dir=checkpoint_dir)


def spec_weight(spec: ExperimentSpec) -> int:
    """Worker slots a spec occupies while running (parallel-ES-aware).

    A Figure 9 arm running the sharded parallel enumeration holds
    ``es_workers`` slots so the orchestrator does not oversubscribe the
    machine with several multi-process searches at once; everything else
    weighs one slot.
    """
    if spec.experiment == "fig9_arm":
        return max(1, int(spec.knobs.get("es_workers", 1)))
    return 1


# ---------------------------------------------------------------------------
# Matrices
# ---------------------------------------------------------------------------

def figure_specs(figure: str, scale: str = "paper") -> List[ExperimentSpec]:
    """The specs one figure/table needs, at a scale preset.

    Derived figures (Figure 4/6, Table 3) return the specs of the base
    figure they are assembled from, so a store populated for the base
    figure already covers them -- the dedup the content-addressed store
    gives for free.
    """
    params = _scale(scale)
    if figure in _DERIVED:
        base = _DERIVED[figure]
        specs = figure_specs(base, scale)
        if figure == "table3":
            # Table 3 shows only the Box 2 layouts.
            specs = [spec for spec in specs if spec.knobs.get("box") == "Box 2"]
        return specs
    if figure in _TPCH_FIGURES:
        workload_kind, sla_ratio = _TPCH_FIGURES[figure]
        repetitions = params["tpch_repetitions"][figure]
        return [
            tpch_spec(box, sla_ratio, workload_kind,
                      scale_factor=params["scale_factor"], repetitions=repetitions)
            for box in BOXES
        ]
    if figure == "fig8":
        return [
            fig8_box_spec(box, warehouses=params["warehouses"],
                          concurrency=params["concurrency"])
            for box in BOXES
        ]
    if figure == "fig9":
        return [
            fig9_arm_spec(limit, warehouses=params["warehouses"],
                          concurrency=params["concurrency"])
            for limit in params["fig9_limits_gb"]
        ]
    if figure == "table1":
        return [table1_spec()]
    if figure == "table2":
        return [table2_spec()]
    raise ConfigurationError(
        f"unknown figure {figure!r}; expected one of {sorted(FIGURES)}"
    )


def matrix(scale: str = "paper", figures_wanted: Sequence[str] = FIGURES) -> List[ExperimentSpec]:
    """The full experiment matrix at a scale, deduplicated by signature."""
    seen = set()
    specs: List[ExperimentSpec] = []
    for figure in figures_wanted:
        for spec in figure_specs(figure, scale):
            if spec.signature not in seen:
                seen.add(spec.signature)
                specs.append(spec)
    return specs


# ---------------------------------------------------------------------------
# Figure assembly from stored payloads
# ---------------------------------------------------------------------------

def strip_timing(payload):
    """A deep copy of ``payload`` with every ``"timing"`` zone removed.

    This is the deterministic view golden comparisons run on: everything an
    executor produced except honest wall-clock measurements.
    """
    if isinstance(payload, dict):
        return {
            key: strip_timing(value)
            for key, value in payload.items()
            if key != "timing"
        }
    if isinstance(payload, list):
        return [strip_timing(item) for item in payload]
    return payload


def _assignment_text(assignment: Dict[str, str]) -> str:
    width = max((len(name) for name in assignment), default=0)
    return "\n".join(
        f"{name:<{width}}  {assignment[name]}" for name in sorted(assignment)
    )


def assemble_figure(
    figure: str,
    lookup: Callable[[ExperimentSpec], Dict[str, object]],
    scale: str = "paper",
) -> Dict[str, object]:
    """Reconstruct one figure/table from per-spec payloads.

    ``lookup`` maps a spec to its payload -- a store read for the
    store-driven pipeline, or :func:`execute` for the direct path the golden
    suite compares against.  Derived figures are assembled from their base
    figure's payloads; no solver runs here.
    """
    specs = figure_specs(figure, scale)
    if figure in _TPCH_FIGURES or figure == "fig8":
        return {spec.knobs["box"]: lookup(spec) for spec in specs}
    if figure in ("fig4", "fig6"):
        assembled = {}
        for spec in specs:
            payload = lookup(spec)
            layout = payload["data"]["dot_layout"]
            assembled[spec.knobs["box"]] = {
                "assignment": layout["assignment"],
                "space_used_gb": layout["space_used_gb"],
                "satisfies_capacity": layout["satisfies_capacity"],
                "text": _assignment_text(layout["assignment"]),
            }
        return assembled
    if figure == "table3":
        (spec,) = specs
        payload = lookup(spec)
        assembled = {"assignments": {}, "satisfies_capacity": {}, "text": ""}
        parts = []
        # Iterate tightest-SLA-last regardless of dict order: the store's
        # JSON round-trip sorts keys, the direct path preserves insertion
        # order, and the assembled view must not depend on which one fed it.
        per_ratio = sorted(
            payload["data"]["dot"].items(), key=lambda item: -float(item[0])
        )
        for ratio, outcome in per_ratio:
            if not outcome["feasible"]:
                continue
            layout = outcome["layout"]
            assembled["assignments"][ratio] = layout["assignment"]
            assembled["satisfies_capacity"][ratio] = layout["satisfies_capacity"]
            parts.append(f"--- relative SLA {ratio} ---")
            parts.append(_assignment_text(layout["assignment"]))
        assembled["text"] = "\n".join(parts)
        return assembled
    if figure == "fig9":
        assembled = {}
        for spec in specs:
            payload = lookup(spec)
            assembled[payload["data"]["label"]] = payload
        return assembled
    if figure in ("table1", "table2"):
        (spec,) = specs
        return lookup(spec)
    raise ConfigurationError(
        f"unknown figure {figure!r}; expected one of {sorted(FIGURES)}"
    )


def assemble_all(
    lookup: Callable[[ExperimentSpec], Dict[str, object]],
    scale: str = "paper",
    figures_wanted: Sequence[str] = FIGURES,
) -> Dict[str, Dict[str, object]]:
    """Every figure/table assembled from per-spec payloads."""
    return {
        figure: assemble_figure(figure, lookup, scale) for figure in figures_wanted
    }


__all__ = [
    "BOXES",
    "DEFAULT_SEED",
    "EXECUTORS",
    "FIGURES",
    "SCALES",
    "assemble_all",
    "assemble_figure",
    "execute",
    "fig8_box_spec",
    "fig9_arm_spec",
    "figure_specs",
    "matrix",
    "spec_weight",
    "strip_timing",
    "table1_spec",
    "table2_spec",
    "tpch_spec",
]
