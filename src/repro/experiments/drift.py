"""The workload-drift experiments: online re-provisioning vs provision-once.

Three drivers exercise the :mod:`repro.online` subsystem end to end:

* :func:`online_drift_experiment` -- the OLTP-to-OLAP crossfade built from
  the two TPC-H workload flavours (the modified, random-I/O ODS-style
  stream fading into the scan-heavy original), comparing the reactive
  online advisor against the frozen epoch-0 layout;
* :func:`predictive_drift_experiment` -- a flash crowd on the same phases,
  comparing the *predictive* controller (trend extrapolation over the
  telemetry window triggers the re-tier before the crowd peaks) against the
  reactive one and the frozen baseline;
* :func:`crosskind_drift_experiment` -- the TPC-C transaction mix
  crossfading into the TPC-H query stream over one merged catalog
  (cross-kind epochs blend the two TOC metrics by the phase weights).

With the deterministic estimator configurations used here (no noise, no
buffer pool), every experiment -- epoch streams, layouts, every printed
digit -- is bitwise reproducible from the seed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import scenarios
from repro.experiments.reporting import format_layout_assignment, format_table
from repro.online.controller import OnlineAdvisor
from repro.online.drift import PhaseSchedule
from repro.online.migration import ReProvisioningPolicy
from repro.online.monitor import DriftThresholds, TrendPredictor
from repro.sla.constraints import RelativeSLA


def online_drift_experiment(
    scale_factor: float = 4.0,
    num_epochs: int = 12,
    sla_ratio: float = 0.25,
    seed: int = 2024,
    box_name: str = "Box 1",
    schedule: Optional[PhaseSchedule] = None,
    thresholds: Optional[DriftThresholds] = None,
    policy: Optional[ReProvisioningPolicy] = None,
    oltp_repetitions: int = 4,
    olap_repetitions: int = 1,
) -> Dict[str, object]:
    """Run the OLTP-to-OLAP crossfade and compare online vs frozen TOC.

    Returns the online timeline, the frozen replay, and a rendered report;
    ``summary`` carries the headline numbers (cumulative costs, the saving
    net of migration charges, re-tier epochs, worst PSR).
    """
    if num_epochs < 2:
        raise ValueError("the drift experiment needs at least two epochs")
    if box_name not in ("Box 1", "Box 2"):
        raise ValueError(f"unknown box name {box_name!r} (expected 'Box 1' or 'Box 2')")
    # The scenario registry builds the crossfade: a deterministic estimator
    # (no noise, no buffer pool: estimates equal simulated runs, so PSR
    # reflects the optimizer's own contract) plus the seeded epoch generator.
    bundle = scenarios.build(
        "tpch_drift_crossfade",
        scale_factor=scale_factor,
        num_epochs=num_epochs,
        seed=seed,
        oltp_repetitions=oltp_repetitions,
        olap_repetitions=olap_repetitions,
        schedule=schedule,
    )
    objects = bundle.objects
    estimator = bundle.estimator
    generator = bundle.extras["generator"]
    system = scenarios.box_system(box_name)
    advisor = OnlineAdvisor(
        objects,
        system,
        estimator,
        sla=RelativeSLA(sla_ratio),
        thresholds=thresholds or DriftThresholds(share_threshold=0.05),
        policy=policy or ReProvisioningPolicy(horizon_epochs=4),
    )

    online = advisor.run(generator.epochs())
    frozen_layout = online.records[0].layout
    frozen = advisor.evaluate_frozen(generator.epochs(), frozen_layout)

    saving_cents = frozen.cumulative_cost_cents - online.cumulative_cost_cents
    summary = {
        "num_epochs": online.num_epochs,
        "online_cumulative_cents": online.cumulative_cost_cents,
        "frozen_cumulative_cents": frozen.cumulative_cost_cents,
        "saving_cents": saving_cents,
        "saving_fraction": (
            saving_cents / frozen.cumulative_cost_cents
            if frozen.cumulative_cost_cents > 0
            else 0.0
        ),
        "migration_cents": online.total_migration_cents,
        "retier_epochs": online.retier_epochs,
        "online_min_psr": online.min_psr,
        "frozen_min_psr": frozen.min_psr,
    }

    comparison = format_table(
        ["Strategy", "Cum. cost (cents)", "Migrations", "Min PSR (%)"],
        [
            ["Online (migration-aware)", online.cumulative_cost_cents,
             len(online.retier_epochs), round(online.min_psr * 100.0, 1)],
            ["Frozen epoch-0 layout", frozen.cumulative_cost_cents,
             0, round(frozen.min_psr * 100.0, 1)],
        ],
    )
    text = "\n".join(
        [
            f"Workload: {generator.name} over {online.num_epochs} epochs "
            f"(relative SLA {sla_ratio:g}, seed {seed})",
            "",
            online.describe(),
            "",
            comparison,
            "",
            f"Net saving of staying online: {saving_cents:.4f} cents "
            f"({summary['saving_fraction'] * 100.0:.1f} % of the frozen cost), "
            f"of which {online.total_migration_cents:.4f} cents were spent on migrations.",
            "",
            format_layout_assignment(online.records[0].layout),
            "",
            format_layout_assignment(online.records[-1].layout),
        ]
    )
    return {
        "online": online,
        "frozen": frozen,
        "generator": generator,
        "summary": summary,
        "text": text,
    }


def predictive_drift_experiment(
    scale_factor: float = 4.0,
    num_epochs: int = 16,
    spike_epoch: int = 8,
    spike_width: int = 4,
    sla_ratio: float = 0.25,
    seed: int = 2024,
    box_name: str = "Box 1",
    share_threshold: float = 0.10,
    horizon_epochs: int = 3,
    predictor: Optional[TrendPredictor] = None,
    oltp_repetitions: int = 4,
    olap_repetitions: int = 1,
) -> Dict[str, object]:
    """A flash crowd served reactively, predictively, and frozen.

    A triangular analytical flash crowd (spike at ``spike_epoch``, ramp of
    ``spike_width`` epochs each side) interrupts the steady transactional
    workload.  Three arms replay identical seeded epochs:

    * **reactive** -- the drift-threshold controller;
    * **predictive** -- the same controller with a
      :class:`~repro.online.monitor.TrendPredictor`: when the telemetry
      window's extrapolated I/O-share trend crosses the drift threshold
      within the prediction horizon, the re-tier happens *before* the crowd
      peaks (against the projected profile), so the peak epochs are served
      by the anticipated layout;
    * **frozen** -- the epoch-0 layout, never adapted.

    Both controllers run with ``retier_on_sla_violation=True`` so neither
    can "win" by riding out the crowd's aftermath on an SLA-violating
    layout; the comparison is between SLA-feasible timelines.  Returns the
    three timelines plus a ``summary`` whose headline is the predictive
    arm's cumulative migration-aware saving over the reactive one.
    """
    if num_epochs < 4:
        raise ValueError("the flash-crowd experiment needs at least four epochs")
    schedule = PhaseSchedule.flash_crowd(
        num_epochs, spike_epoch=spike_epoch, width=spike_width,
        phase_names=("oltp", "olap"),
    )
    chosen_predictor = predictor or TrendPredictor(window=3, horizon_epochs=2,
                                                   min_history=2)

    def build_advisor(with_predictor: bool) -> Dict[str, object]:
        bundle = scenarios.build(
            "tpch_drift_crossfade",
            scale_factor=scale_factor,
            num_epochs=num_epochs,
            seed=seed,
            oltp_repetitions=oltp_repetitions,
            olap_repetitions=olap_repetitions,
            schedule=schedule,
        )
        advisor = OnlineAdvisor(
            bundle.objects,
            scenarios.box_system(box_name),
            bundle.estimator_factory(),
            sla=RelativeSLA(sla_ratio),
            thresholds=DriftThresholds(share_threshold=share_threshold),
            policy=ReProvisioningPolicy(horizon_epochs=horizon_epochs),
            predictor=chosen_predictor if with_predictor else None,
            retier_on_sla_violation=True,
        )
        return {"advisor": advisor, "generator": bundle.extras["generator"]}

    reactive_arm = build_advisor(with_predictor=False)
    reactive = reactive_arm["advisor"].run(reactive_arm["generator"].epochs())
    predictive_arm = build_advisor(with_predictor=True)
    predictive = predictive_arm["advisor"].run(predictive_arm["generator"].epochs())
    frozen = reactive_arm["advisor"].evaluate_frozen(
        reactive_arm["generator"].epochs(), reactive.records[0].layout
    )

    saving_cents = reactive.cumulative_cost_cents - predictive.cumulative_cost_cents
    summary = {
        "num_epochs": num_epochs,
        "spike_epoch": spike_epoch,
        "reactive_cumulative_cents": reactive.cumulative_cost_cents,
        "predictive_cumulative_cents": predictive.cumulative_cost_cents,
        "frozen_cumulative_cents": frozen.cumulative_cost_cents,
        "predictive_saving_cents": saving_cents,
        "predictive_saving_fraction": (
            saving_cents / reactive.cumulative_cost_cents
            if reactive.cumulative_cost_cents > 0
            else 0.0
        ),
        "reactive_retier_epochs": reactive.retier_epochs,
        "predictive_retier_epochs": predictive.retier_epochs,
        "predicted_retier_epochs": predictive.predicted_retier_epochs,
        "reactive_min_psr": reactive.min_psr,
        "predictive_min_psr": predictive.min_psr,
    }
    comparison = format_table(
        ["Strategy", "Cum. cost (cents)", "Migrations", "Min PSR (%)"],
        [
            ["Predictive (trend-triggered)", predictive.cumulative_cost_cents,
             len(predictive.retier_epochs), round(predictive.min_psr * 100.0, 1)],
            ["Reactive (threshold-triggered)", reactive.cumulative_cost_cents,
             len(reactive.retier_epochs), round(reactive.min_psr * 100.0, 1)],
            ["Frozen epoch-0 layout", frozen.cumulative_cost_cents,
             0, round(frozen.min_psr * 100.0, 1)],
        ],
    )
    text = "\n".join(
        [
            f"Flash crowd at epoch {spike_epoch} (width {spike_width}) over "
            f"{num_epochs} epochs (relative SLA {sla_ratio:g}, seed {seed})",
            "",
            "Predictive timeline ('pred' marks trend-triggered re-tiers):",
            predictive.describe(),
            "",
            "Reactive timeline:",
            reactive.describe(),
            "",
            comparison,
            "",
            f"Anticipating the crowd saves {saving_cents:.4f} cents over reacting to it "
            f"({summary['predictive_saving_fraction'] * 100.0:.1f} % of the reactive cost).",
        ]
    )
    return {
        "predictive": predictive,
        "reactive": reactive,
        "frozen": frozen,
        "generator": predictive_arm["generator"],
        "summary": summary,
        "text": text,
    }


def crosskind_drift_experiment(
    scale_factor: float = 2.0,
    warehouses: int = 30,
    oltp_concurrency: int = 100,
    num_epochs: int = 12,
    sla_ratio: float = 0.25,
    seed: int = 2024,
    box_name: str = "Box 1",
    share_threshold: float = 0.05,
    horizon_epochs: int = 4,
) -> Dict[str, object]:
    """The cross-kind crossfade: TPC-C transactions fade into TPC-H queries.

    The two benchmarks share one merged catalog (TPC-C tables under a
    ``tpcc_`` prefix), so the drift is a genuine I/O-share migration from
    the transactional tables to the analytical ones.  Blended epochs are
    :class:`~repro.workloads.workload.CrossKindWorkload` instances: the
    controller evaluates each component with its own kind's machinery
    (estimate caches per concurrency, SLA metric per kind) and blends TOC
    and PSR by the phase weights.  Telemetry-driven profiling is what makes
    the blended epochs solvable at all -- the estimator replay cannot
    profile a kind-mixed workload.
    """
    if num_epochs < 2:
        raise ValueError("the cross-kind experiment needs at least two epochs")
    bundle = scenarios.build(
        "tpch_tpcc_crosskind_drift",
        scale_factor=scale_factor,
        warehouses=warehouses,
        oltp_concurrency=oltp_concurrency,
        num_epochs=num_epochs,
        seed=seed,
    )
    advisor = OnlineAdvisor(
        bundle.objects,
        scenarios.box_system(box_name),
        bundle.estimator_factory(),
        sla=RelativeSLA(sla_ratio),
        thresholds=DriftThresholds(share_threshold=share_threshold),
        policy=ReProvisioningPolicy(horizon_epochs=horizon_epochs),
    )
    generator = bundle.extras["generator"]
    online = advisor.run(generator.epochs())
    frozen_layout = online.records[0].layout
    frozen = advisor.evaluate_frozen(generator.epochs(), frozen_layout)

    saving_cents = frozen.cumulative_cost_cents - online.cumulative_cost_cents
    # Blended epochs are recognisable from the completed run (no need to
    # re-materialise the epoch streams a third time just to count them).
    mixed_epochs = sum(
        1 for record in online.records
        if record.report is not None and record.report.metric == "cents_blended"
    )
    summary = {
        "num_epochs": online.num_epochs,
        "mixed_epochs": mixed_epochs,
        "online_cumulative_cents": online.cumulative_cost_cents,
        "frozen_cumulative_cents": frozen.cumulative_cost_cents,
        "saving_cents": saving_cents,
        "saving_fraction": (
            saving_cents / frozen.cumulative_cost_cents
            if frozen.cumulative_cost_cents > 0
            else 0.0
        ),
        "migration_cents": online.total_migration_cents,
        "retier_epochs": online.retier_epochs,
        "online_min_psr": online.min_psr,
        "frozen_min_psr": frozen.min_psr,
    }
    comparison = format_table(
        ["Strategy", "Cum. blended cost (cents)", "Migrations", "Min PSR (%)"],
        [
            ["Online (cross-kind aware)", online.cumulative_cost_cents,
             len(online.retier_epochs), round(online.min_psr * 100.0, 1)],
            ["Frozen epoch-0 layout", frozen.cumulative_cost_cents,
             0, round(frozen.min_psr * 100.0, 1)],
        ],
    )
    text = "\n".join(
        [
            f"Cross-kind drift: {generator.name} over {online.num_epochs} epochs "
            f"({mixed_epochs} kind-mixed, relative SLA {sla_ratio:g}, seed {seed})",
            "",
            online.describe(),
            "",
            comparison,
            "",
            f"Staying online saves {saving_cents:.4f} cents "
            f"({summary['saving_fraction'] * 100.0:.1f} % of the frozen blended cost), "
            f"of which {online.total_migration_cents:.4f} cents were spent on migrations.",
        ]
    )
    return {
        "online": online,
        "frozen": frozen,
        "generator": generator,
        "summary": summary,
        "text": text,
    }
