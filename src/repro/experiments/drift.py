"""The workload-drift experiment: online re-provisioning vs provision-once.

This driver exercises the :mod:`repro.online` subsystem end to end on an
OLTP-to-OLAP crossfade built from the two TPC-H workload flavours:

* the **transactional phase** is the modified (ODS-style) workload --
  selective index lookups, random-I/O dominated;
* the **analytical phase** is the original workload -- full scans and large
  joins, sequential-I/O dominated.

A smoothstep crossfade drifts the epoch mix from pure transactional to pure
analytical.  The :class:`~repro.online.controller.OnlineAdvisor` re-tiers
whenever its telemetry monitor flags drift and the projected TOC saving
amortises the migration cost; the baseline replays the same epochs on the
frozen epoch-0 layout.  With the deterministic estimator configuration used
here (no noise, no buffer pool), the whole experiment -- epoch streams,
layouts, every printed digit -- is bitwise reproducible from the seed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import scenarios
from repro.experiments.reporting import format_layout_assignment, format_table
from repro.online.controller import OnlineAdvisor
from repro.online.migration import ReProvisioningPolicy
from repro.online.monitor import DriftThresholds
from repro.sla.constraints import RelativeSLA


def online_drift_experiment(
    scale_factor: float = 4.0,
    num_epochs: int = 12,
    sla_ratio: float = 0.25,
    seed: int = 2024,
    box_name: str = "Box 1",
    schedule: Optional[PhaseSchedule] = None,
    thresholds: Optional[DriftThresholds] = None,
    policy: Optional[ReProvisioningPolicy] = None,
    oltp_repetitions: int = 4,
    olap_repetitions: int = 1,
) -> Dict[str, object]:
    """Run the OLTP-to-OLAP crossfade and compare online vs frozen TOC.

    Returns the online timeline, the frozen replay, and a rendered report;
    ``summary`` carries the headline numbers (cumulative costs, the saving
    net of migration charges, re-tier epochs, worst PSR).
    """
    if num_epochs < 2:
        raise ValueError("the drift experiment needs at least two epochs")
    if box_name not in ("Box 1", "Box 2"):
        raise ValueError(f"unknown box name {box_name!r} (expected 'Box 1' or 'Box 2')")
    # The scenario registry builds the crossfade: a deterministic estimator
    # (no noise, no buffer pool: estimates equal simulated runs, so PSR
    # reflects the optimizer's own contract) plus the seeded epoch generator.
    bundle = scenarios.build(
        "tpch_drift_crossfade",
        scale_factor=scale_factor,
        num_epochs=num_epochs,
        seed=seed,
        oltp_repetitions=oltp_repetitions,
        olap_repetitions=olap_repetitions,
        schedule=schedule,
    )
    objects = bundle.objects
    estimator = bundle.estimator
    generator = bundle.extras["generator"]
    system = scenarios.box_system(box_name)
    advisor = OnlineAdvisor(
        objects,
        system,
        estimator,
        sla=RelativeSLA(sla_ratio),
        thresholds=thresholds or DriftThresholds(share_threshold=0.05),
        policy=policy or ReProvisioningPolicy(horizon_epochs=4),
    )

    online = advisor.run(generator.epochs())
    frozen_layout = online.records[0].layout
    frozen = advisor.evaluate_frozen(generator.epochs(), frozen_layout)

    saving_cents = frozen.cumulative_cost_cents - online.cumulative_cost_cents
    summary = {
        "num_epochs": online.num_epochs,
        "online_cumulative_cents": online.cumulative_cost_cents,
        "frozen_cumulative_cents": frozen.cumulative_cost_cents,
        "saving_cents": saving_cents,
        "saving_fraction": (
            saving_cents / frozen.cumulative_cost_cents
            if frozen.cumulative_cost_cents > 0
            else 0.0
        ),
        "migration_cents": online.total_migration_cents,
        "retier_epochs": online.retier_epochs,
        "online_min_psr": online.min_psr,
        "frozen_min_psr": frozen.min_psr,
    }

    comparison = format_table(
        ["Strategy", "Cum. cost (cents)", "Migrations", "Min PSR (%)"],
        [
            ["Online (migration-aware)", online.cumulative_cost_cents,
             len(online.retier_epochs), round(online.min_psr * 100.0, 1)],
            ["Frozen epoch-0 layout", frozen.cumulative_cost_cents,
             0, round(frozen.min_psr * 100.0, 1)],
        ],
    )
    text = "\n".join(
        [
            f"Workload: {generator.name} over {online.num_epochs} epochs "
            f"(relative SLA {sla_ratio:g}, seed {seed})",
            "",
            online.describe(),
            "",
            comparison,
            "",
            f"Net saving of staying online: {saving_cents:.4f} cents "
            f"({summary['saving_fraction'] * 100.0:.1f} % of the frozen cost), "
            f"of which {online.total_migration_cents:.4f} cents were spent on migrations.",
            "",
            format_layout_assignment(online.records[0].layout),
            "",
            format_layout_assignment(online.records[-1].layout),
        ]
    )
    return {
        "online": online,
        "frozen": frozen,
        "generator": generator,
        "summary": summary,
        "text": text,
    }
