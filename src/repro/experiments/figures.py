"""Per-figure / per-table experiment drivers.

Every entry of the paper's evaluation section has one function here that
regenerates it: the storage profile table (Table 1), the TPC-H
cost/performance comparisons (Figures 3, 5, 7) and their recommended layouts
(Figures 4, 6), the heuristics-versus-exhaustive-search studies (Sections
4.4.3 and 4.5.3 / Figure 9), the TPC-C results (Figure 8, Table 3), and the
Section 5 extensions.  Each function accepts scale parameters so the same
code drives both the full paper-scale reproduction and the quick versions
used by tests and CI-sized benchmark runs.

Functions return a dictionary with structured results plus a ``"text"`` entry
containing a rendered table, so benchmarks can both assert on the numbers and
print something a human can compare against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.advisor import ProvisioningAdvisor
from repro.core.batch_eval import QueryEstimateCache
from repro.core.discrete_cost import DiscreteCostModel
from repro.core.dot import DOTOptimizer
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.ilp import MILPPlacement
from repro.core.layout import Layout
from repro.core.object_advisor import ObjectAdvisor
from repro.core.profiler import WorkloadProfiler
from repro.core.provisioning import GeneralizedProvisioner, ProvisioningOption
from repro.core.simple_layouts import simple_layouts
from repro.core.toc import TOCModel
from repro.dbms.buffer_pool import BufferPool
from repro.dbms.executor import WorkloadEstimator
from repro.experiments import boxes
from repro.experiments.reporting import (
    format_evaluations,
    format_layout_assignment,
    format_table,
)
from repro.experiments.runner import ExperimentRunner
from repro.objects import group_objects
from repro.sla.constraints import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.storage.microbench import MicroBenchmark, format_table1
from repro.workloads import tpcc, tpch


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------

def _tpch_setup(scale_factor: float, workload_kind: str, repetitions: Optional[int]):
    """Catalog, workload and estimator for a TPC-H experiment."""
    catalog = tpch.build_catalog(scale_factor)
    if workload_kind == "original":
        workload = tpch.original_workload(scale_factor, repetitions=repetitions or 3)
    elif workload_kind == "modified":
        workload = tpch.modified_workload(scale_factor, repetitions=repetitions or 20)
    elif workload_kind == "es-subset":
        workload = tpch.es_subset_workload(scale_factor, repetitions=repetitions or 3)
    else:
        raise ValueError(f"unknown TPC-H workload kind {workload_kind!r}")
    estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
    return catalog, workload, estimator


def _tpcc_setup(warehouses: int, concurrency: int = 300):
    """Catalog, workload and estimator for a TPC-C experiment."""
    catalog = tpcc.build_catalog(warehouses)
    workload = tpcc.oltp_workload(warehouses, concurrency=concurrency)
    estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
    return catalog, workload, estimator


# ---------------------------------------------------------------------------
# Table 1 and Table 2
# ---------------------------------------------------------------------------

def table1(concurrencies: Sequence[int] = (1, 300)) -> Dict[str, object]:
    """Regenerate Table 1: storage prices and measured I/O profiles."""
    classes = storage_catalog.all_storage_classes()
    prices = {name: sc.price_cents_per_gb_hour for name, sc in classes.items()}
    bench = MicroBenchmark()
    rows = bench.profile_all(classes, concurrencies)
    return {
        "prices_cents_per_gb_hour": prices,
        "published_prices": dict(storage_catalog.PUBLISHED_PRICES_CENTS_PER_GB_HOUR),
        "profiles": rows,
        "text": format_table1(rows, prices),
    }


def table2() -> Dict[str, object]:
    """Regenerate Table 2: device specifications."""
    devices = storage_catalog.ALL_DEVICES
    headers = ["Attribute"] + list(devices)
    attribute_rows = [
        ["Brand & model"] + [spec.name for spec in devices.values()],
        ["Flash type"] + [spec.flash_type or "N/A" for spec in devices.values()],
        ["Capacity (GB)"] + [spec.capacity_gb for spec in devices.values()],
        ["Interface"] + [spec.interface for spec in devices.values()],
        ["RPM"] + [spec.rpm or "N/A" for spec in devices.values()],
        ["Cache (MB)"] + [spec.cache_mb or "N/A" for spec in devices.values()],
        ["Purchase cost ($)"] + [spec.purchase_cost_usd for spec in devices.values()],
        ["Power (W)"] + [spec.power_watts for spec in devices.values()],
    ]
    return {"devices": devices, "text": format_table(headers, attribute_rows)}


# ---------------------------------------------------------------------------
# TPC-H comparisons (Figures 3-7)
# ---------------------------------------------------------------------------

def tpch_comparison(
    box_name: str = "Box 1",
    sla_ratio: float = 0.5,
    workload_kind: str = "original",
    scale_factor: float = 20.0,
    repetitions: Optional[int] = None,
    include_object_advisor: bool = True,
) -> Dict[str, object]:
    """Cost/performance comparison of DOT, OA and the simple layouts.

    This single driver, parameterised by workload kind and SLA ratio,
    regenerates Figures 3 (original, 0.5), 5 (modified, 0.5) and 7
    (modified, 0.25), together with the DOT layouts shown in Figures 4 and 6.
    """
    catalog, workload, estimator = _tpch_setup(scale_factor, workload_kind, repetitions)
    system = boxes.box1() if box_name == "Box 1" else boxes.box2()
    objects = catalog.database_objects()
    runner = ExperimentRunner(objects, system, estimator)
    sla = RelativeSLA(sla_ratio, metric="response_time")
    measured_constraint = runner.resolve_constraint(workload, sla, mode="run")

    layouts: Dict[str, Layout] = dict(simple_layouts(objects, system))

    advisor = ProvisioningAdvisor(objects, system, estimator)
    recommendation = advisor.recommend(workload, sla=sla)
    layouts["DOT"] = recommendation.layout

    oa_layout = None
    if include_object_advisor:
        oa_layout = ObjectAdvisor(objects, system, estimator).recommend(workload).layout
        layouts["OA"] = oa_layout

    evaluations = runner.evaluate_layouts(layouts, workload, sla=measured_constraint)
    evaluations.sort(key=lambda evaluation: evaluation.toc_cents)
    return {
        "box": box_name,
        "workload": workload.name,
        "sla_ratio": sla_ratio,
        "constraint": measured_constraint,
        "evaluations": evaluations,
        "dot_layout": recommendation.layout,
        "dot_recommendation": recommendation,
        "oa_layout": oa_layout,
        "text": format_evaluations(evaluations, metric_label="Response time (s)"),
    }


def figure3(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 3: original TPC-H workload at relative SLA 0.5 on both boxes."""
    return {
        box_name: tpch_comparison(box_name, 0.5, "original", scale_factor, repetitions)
        for box_name in ("Box 1", "Box 2")
    }


def figure4(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 4: the DOT layouts recommended for the original workload (SLA 0.5)."""
    results = figure3(scale_factor, repetitions)
    return {
        box_name: {
            "layout": result["dot_layout"],
            "text": format_layout_assignment(result["dot_layout"]),
        }
        for box_name, result in results.items()
    }


def figure5(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 5: modified TPC-H workload at relative SLA 0.5 on both boxes."""
    return {
        box_name: tpch_comparison(box_name, 0.5, "modified", scale_factor, repetitions)
        for box_name in ("Box 1", "Box 2")
    }


def figure6(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 6: the DOT layouts recommended for the modified workload (SLA 0.5)."""
    results = figure5(scale_factor, repetitions)
    return {
        box_name: {
            "layout": result["dot_layout"],
            "text": format_layout_assignment(result["dot_layout"]),
        }
        for box_name, result in results.items()
    }


def figure7(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 7: modified TPC-H workload at relative SLA 0.25 on both boxes."""
    return {
        box_name: tpch_comparison(box_name, 0.25, "modified", scale_factor, repetitions)
        for box_name in ("Box 1", "Box 2")
    }


# ---------------------------------------------------------------------------
# Heuristics vs exhaustive search on TPC-H (Section 4.4.3)
# ---------------------------------------------------------------------------

def es_vs_dot_tpch(
    scale_factor: float = 20.0,
    sla_ratio: float = 0.5,
    capacity_limits_gb: Optional[Mapping[str, Mapping[str, float]]] = None,
    repetitions: int = 3,
    es_workers: int = 1,
    full_object_set: bool = False,
    es_max_layouts: int = 500_000,
) -> Dict[str, object]:
    """Section 4.4.3: DOT vs exhaustive search on the reduced TPC-H workload.

    ``capacity_limits_gb`` maps box name to per-class capacity limits, e.g.
    ``{"Box 1": {"HDD RAID 0": 24.0}, "Box 2": {"HDD": 8.0}}``.

    The paper restricts the enumeration to eight objects because ``M^N`` is
    exponential; ``full_object_set=True`` enumerates *all* TPC-H objects (the
    full ``3^19``-layout space per box) instead, which is practical through
    the sharded, pruned parallel engine -- pass ``es_workers > 1`` (the
    layout-count guard then becomes soft).  Results per configuration are
    bitwise identical to the serial search.
    """
    catalog, workload, estimator = _tpch_setup(scale_factor, "es-subset", repetitions)
    if full_object_set:
        objects = catalog.database_objects()
    else:
        objects = [
            obj
            for obj in catalog.database_objects()
            if obj.name in set(tpch_es_objects())
        ]
    limits = capacity_limits_gb or {"Box 1": {}, "Box 2": {}}
    results: Dict[str, Dict[str, object]] = {}

    for box_name, box_limits in limits.items():
        system = (
            boxes.box1(capacity_limits_gb=box_limits)
            if box_name == "Box 1"
            else boxes.box2(capacity_limits_gb=box_limits)
        )
        runner = ExperimentRunner(objects, system, estimator)
        search_constraint = runner.resolve_constraint(
            workload, RelativeSLA(sla_ratio), mode="estimate"
        )
        constraint = runner.resolve_constraint(workload, RelativeSLA(sla_ratio), mode="run")

        # One estimate table serves profiling, DOT's walk and the exhaustive
        # enumeration: every (query, touched-placement-signature) pair is
        # estimated once for the whole comparison.
        shared_estimates = QueryEstimateCache(estimator, workload.concurrency)
        profiler = WorkloadProfiler(objects, system, estimator,
                                    estimate_cache=shared_estimates)
        profiles = profiler.profile(workload, mode="estimate")

        dot = DOTOptimizer(objects, system, estimator, constraint=search_constraint,
                           estimate_cache=shared_estimates)
        dot_result = dot.optimize(workload, profiles)

        search = ExhaustiveSearch(objects, system, estimator, constraint=search_constraint,
                                  estimate_cache=shared_estimates, workers=es_workers,
                                  max_layouts=es_max_layouts)
        es_result = search.search(workload)

        comparison: Dict[str, object] = {
            "constraint": constraint,
            "dot": dot_result,
            "es": es_result,
            "dot_elapsed_s": dot_result.elapsed_s,
            "es_elapsed_s": es_result.elapsed_s,
            "dot_evaluated": dot_result.evaluated_layouts,
            "es_evaluated": es_result.evaluated_layouts,
            "es_stats": search.last_batch_stats,
        }
        rows = []
        for label, outcome in (("DOT", dot_result), ("ES", es_result)):
            if outcome.feasible:
                evaluation = runner.evaluate_layout(outcome.layout, workload, constraint)
                comparison[f"{label.lower()}_evaluation"] = evaluation
                rows.append(
                    [label, evaluation.response_time_s, evaluation.toc_cents,
                     outcome.evaluated_layouts, outcome.elapsed_s]
                )
            else:
                rows.append([label, float("nan"), float("nan"),
                             outcome.evaluated_layouts, outcome.elapsed_s])
        comparison["text"] = format_table(
            ["Method", "Response time (s)", "TOC (cents)", "Layouts", "Search time (s)"], rows
        )
        results[box_name] = comparison
    return results


def tpch_es_objects() -> Tuple[str, ...]:
    """The eight objects of the Section 4.4.3 study."""
    from repro.workloads.tpch.queries import ES_SUBSET_OBJECTS

    return ES_SUBSET_OBJECTS


# ---------------------------------------------------------------------------
# TPC-C experiments (Figure 8, Table 3, Figure 9)
# ---------------------------------------------------------------------------

def figure8(
    warehouses: int = 300,
    sla_ratios: Sequence[float] = (0.5, 0.25, 0.125),
    concurrency: int = 300,
) -> Dict[str, object]:
    """Figure 8: TPC-C tpmC versus TOC for DOT (per SLA) and the simple layouts."""
    catalog, workload, estimator = _tpcc_setup(warehouses, concurrency)
    objects = catalog.database_objects()
    results: Dict[str, Dict[str, object]] = {}
    for box_name in ("Box 1", "Box 2"):
        system = boxes.box1() if box_name == "Box 1" else boxes.box2()
        runner = ExperimentRunner(objects, system, estimator)
        profiler = WorkloadProfiler(objects, system, estimator)
        # The paper profiles TPC-C on a single All H-SSD baseline via a test
        # run, because the (random-I/O) plans never change with the layout.
        single_pattern = profiler.single_baseline_pattern()
        profiles = profiler.profile(workload, mode="testrun", patterns=[single_pattern])

        layouts: Dict[str, Layout] = dict(simple_layouts(objects, system))
        dot_layouts: Dict[str, Layout] = {}
        per_sla = {}
        for ratio in sla_ratios:
            constraint = runner.resolve_constraint(
                workload, RelativeSLA(ratio, metric="throughput"), mode="estimate"
            )
            dot = DOTOptimizer(objects, system, estimator, constraint=constraint)
            outcome = dot.optimize(workload, profiles)
            per_sla[ratio] = outcome
            if outcome.feasible:
                name = f"DOT (SLA {ratio:g})"
                dot_layouts[name] = outcome.layout.renamed(name)
        layouts.update(dot_layouts)
        evaluations = runner.evaluate_layouts(layouts, workload, sla=None)
        evaluations.sort(key=lambda evaluation: -(evaluation.transactions_per_minute or 0.0))
        results[box_name] = {
            "evaluations": evaluations,
            "dot_results": per_sla,
            "text": format_evaluations(evaluations, metric_label="tpmC"),
        }
    return results


def table3(
    warehouses: int = 300,
    sla_ratios: Sequence[float] = (0.5, 0.25, 0.125),
    concurrency: int = 300,
) -> Dict[str, object]:
    """Table 3: the DOT layouts on Box 2 for TPC-C under each relative SLA."""
    catalog, workload, estimator = _tpcc_setup(warehouses, concurrency)
    objects = catalog.database_objects()
    system = boxes.box2()
    runner = ExperimentRunner(objects, system, estimator)
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(
        workload, mode="testrun", patterns=[profiler.single_baseline_pattern()]
    )
    layouts: Dict[float, Layout] = {}
    for ratio in sla_ratios:
        constraint = runner.resolve_constraint(
            workload, RelativeSLA(ratio, metric="throughput"), mode="estimate"
        )
        dot = DOTOptimizer(objects, system, estimator, constraint=constraint)
        outcome = dot.optimize(workload, profiles)
        if outcome.feasible:
            layouts[ratio] = outcome.layout
    text_parts = []
    for ratio, layout in layouts.items():
        text_parts.append(f"--- relative SLA {ratio:g} ---")
        text_parts.append(format_layout_assignment(layout))
    return {"layouts": layouts, "text": "\n".join(text_parts)}


def figure9(
    warehouses: int = 300,
    sla_ratio: float = 0.25,
    hssd_capacity_limits_gb: Sequence[Optional[float]] = (None, 21.0),
    concurrency: int = 300,
    hot_groups: Optional[Sequence[str]] = ("stock", "order_line", "customer"),
    es_workers: int = 1,
    es_max_layouts: int = 500_000,
) -> Dict[str, object]:
    """Figure 9 / Section 4.5.3: ES vs DOT for TPC-C under H-SSD capacity limits.

    The paper's exhaustive search over all TPC-C objects is intractable to
    enumerate on one core (3^19 layouts); by default the enumeration is
    restricted to the objects that dominate the I/O -- the ``hot_groups``
    tables and their indexes -- with the remaining (small or rarely touched)
    objects pinned to the cheapest class.  DOT runs over the same restricted
    object set so that the DOT-vs-ES comparison stays apples to apples.

    ``hot_groups=None`` enumerates *every* TPC-C object (the paper's full
    ``3^19`` space); combine it with ``es_workers > 1`` so the sharded,
    pruned parallel engine carries the enumeration (the layout-count guard
    then becomes soft).
    """
    catalog, workload, estimator = _tpcc_setup(warehouses, concurrency)
    all_objects = catalog.database_objects()
    if hot_groups is None:
        hot = list(all_objects)
        cold = []
    else:
        hot = [obj for obj in all_objects if (obj.table or obj.name) in set(hot_groups)]
        cold = [obj for obj in all_objects if obj not in hot]

    results: Dict[str, Dict[str, object]] = {}
    for limit in hssd_capacity_limits_gb:
        limits = {"H-SSD": limit} if limit is not None else {}
        system = boxes.box2(capacity_limits_gb=limits)
        pinned_class = system.most_expensive().name

        runner = ExperimentRunner(all_objects, system, estimator)
        search_constraint = runner.resolve_constraint(
            workload, RelativeSLA(sla_ratio, metric="throughput"), mode="estimate"
        )
        constraint = runner.resolve_constraint(
            workload, RelativeSLA(sla_ratio, metric="throughput"), mode="run"
        )

        profiler = WorkloadProfiler(all_objects, system, estimator)
        profiles = profiler.profile(
            workload, mode="testrun", patterns=[profiler.single_baseline_pattern()]
        )

        # One estimate table shared between DOT's walk and the exhaustive
        # enumeration (profiling is a test run here, so it cannot share it).
        shared_estimates = QueryEstimateCache(estimator, workload.concurrency)

        # DOT over the full object set (as the paper does).
        dot = DOTOptimizer(all_objects, system, estimator, constraint=search_constraint,
                           estimate_cache=shared_estimates)
        dot_outcome = dot.optimize(workload, profiles)

        # ES over the hot objects with the cold objects pinned.
        search = ExhaustiveSearch(
            hot,
            system,
            estimator,
            constraint=search_constraint,
            per_group=True,
            pinned_objects=cold,
            pinned_class=pinned_class,
            estimate_cache=shared_estimates,
            workers=es_workers,
            max_layouts=es_max_layouts,
        )
        es_outcome = search.search(workload)

        label = f"H-SSD limit {limit:g} GB" if limit is not None else "No limit"
        rows = []
        entry: Dict[str, object] = {
            "constraint": constraint,
            "dot": dot_outcome,
            "es": es_outcome,
            "es_stats": search.last_batch_stats,
        }
        for method, outcome in (("DOT", dot_outcome), ("ES", es_outcome)):
            if not outcome.feasible:
                rows.append([method, float("nan"), float("nan"), outcome.elapsed_s])
                continue
            evaluation = runner.evaluate_layout(
                outcome.layout.renamed(method), workload, constraint
            )
            entry[f"{method.lower()}_evaluation"] = evaluation
            rows.append(
                [method, evaluation.transactions_per_minute, evaluation.toc_cents,
                 outcome.elapsed_s]
            )
        entry["text"] = format_table(["Method", "tpmC", "TOC (cents/txn)", "Search time (s)"], rows)
        results[label] = entry
    return results


# ---------------------------------------------------------------------------
# Section 5 extensions and ablations
# ---------------------------------------------------------------------------

def generalized_provisioning(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    repetitions: int = 1,
) -> Dict[str, object]:
    """Section 5.1: choose the storage configuration (box) and the layout."""
    catalog, workload, estimator = _tpch_setup(scale_factor, "original", repetitions)
    objects = catalog.database_objects()
    options = [
        ProvisioningOption("Box 1", boxes.box1(), "HDD RAID 0 + L-SSD + H-SSD"),
        ProvisioningOption("Box 2", boxes.box2(), "HDD + L-SSD RAID 0 + H-SSD"),
        ProvisioningOption(
            "All classes", storage_catalog.full_system(), "hypothetical box with all five classes"
        ),
    ]
    provisioner = GeneralizedProvisioner(objects, estimator)
    decision = provisioner.decide(workload, options, sla=RelativeSLA(sla_ratio))
    return {"decision": decision, "text": decision.describe()}


def discrete_cost_experiment(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    alphas: Sequence[float] = (0.0, 0.5, 1.0),
    repetitions: int = 1,
) -> Dict[str, object]:
    """Section 5.2: DOT under the discrete-sized storage cost model."""
    catalog, workload, estimator = _tpch_setup(scale_factor, "original", repetitions)
    objects = catalog.database_objects()
    system = boxes.box1()
    runner = ExperimentRunner(objects, system, estimator)
    constraint = runner.resolve_constraint(workload, RelativeSLA(sla_ratio), mode="estimate")
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(workload, mode="estimate")

    rows = []
    per_alpha: Dict[float, object] = {}
    for alpha in alphas:
        cost_model = DiscreteCostModel(alpha=alpha)
        dot = DOTOptimizer(objects, system, estimator, constraint=constraint,
                           cost_override=cost_model)
        outcome = dot.optimize(workload, profiles)
        per_alpha[alpha] = outcome
        if outcome.feasible:
            classes_used = sum(
                1 for _, used in outcome.layout.space_used_gb().items() if used > 0
            )
            rows.append([alpha, outcome.toc_cents, classes_used])
        else:
            rows.append([alpha, float("nan"), 0])
    return {
        "results": per_alpha,
        "text": format_table(["alpha", "TOC (cents)", "classes used"], rows),
    }


def ablation_grouping(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    repetitions: int = 4,
) -> Dict[str, object]:
    """Ablation: DOT's object groups vs per-object (layout-interaction-blind) moves."""
    catalog, workload, estimator = _tpch_setup(scale_factor, "modified", repetitions)
    objects = catalog.database_objects()
    system = boxes.box1()
    runner = ExperimentRunner(objects, system, estimator)
    constraint = runner.resolve_constraint(workload, RelativeSLA(sla_ratio), mode="estimate")
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(workload, mode="estimate")

    rows = []
    outcomes = {}
    for label, independent in (("grouped (DOT)", False), ("independent objects", True)):
        dot = DOTOptimizer(objects, system, estimator, constraint=constraint,
                           independent_objects=independent)
        outcome = dot.optimize(workload, profiles)
        outcomes[label] = outcome
        if outcome.feasible:
            evaluation = runner.evaluate_layout(outcome.layout, workload, constraint)
            rows.append([label, evaluation.response_time_s, evaluation.toc_cents, evaluation.psr])
        else:
            rows.append([label, float("nan"), float("nan"), 0.0])
    return {
        "results": outcomes,
        "text": format_table(["Enumeration", "Response time (s)", "TOC (cents)", "PSR"], rows),
    }


def ablation_ilp(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    repetitions: int = 3,
) -> Dict[str, object]:
    """Ablation: DOT's greedy walk vs the exact MILP relaxation."""
    catalog, workload, estimator = _tpch_setup(scale_factor, "es-subset", repetitions)
    objects = [obj for obj in catalog.database_objects() if obj.name in set(tpch_es_objects())]
    system = boxes.box1()
    runner = ExperimentRunner(objects, system, estimator)
    constraint = runner.resolve_constraint(workload, RelativeSLA(sla_ratio), mode="estimate")
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(workload, mode="estimate")

    dot = DOTOptimizer(objects, system, estimator, constraint=constraint)
    dot_outcome = dot.optimize(workload, profiles)

    # The MILP's time budget is the all-fast layout's profiled I/O time share
    # scaled by the SLA ratio.
    groups = group_objects(objects)
    best_class = system.most_expensive().name
    best_time = sum(
        profiles.io_time_share_ms(group, tuple([best_class] * len(group))) for group in groups
    )
    milp = MILPPlacement(objects, system)
    milp_outcome = milp.solve(profiles, io_time_budget_ms=best_time / sla_ratio)

    rows = []
    toc_model = TOCModel(estimator)
    results = {"dot": dot_outcome, "milp": milp_outcome}
    if dot_outcome.feasible:
        rows.append(["DOT", dot_outcome.toc_cents, dot_outcome.elapsed_s])
    if milp_outcome.feasible:
        milp_report = toc_model.evaluate(milp_outcome.layout, workload, mode="estimate")
        results["milp_report"] = milp_report
        rows.append(["MILP", milp_report.toc_cents, milp_outcome.elapsed_s])
    return {
        "results": results,
        "text": format_table(["Method", "TOC (cents)", "Solve time (s)"], rows),
    }
