"""Per-figure / per-table experiment drivers.

Every entry of the paper's evaluation section has one function here that
regenerates it: the storage profile table (Table 1), the TPC-H
cost/performance comparisons (Figures 3, 5, 7) and their recommended layouts
(Figures 4, 6), the heuristics-versus-exhaustive-search studies (Sections
4.4.3 and 4.5.3 / Figure 9), the TPC-C results (Figure 8, Table 3), and the
Section 5 extensions.  Each function accepts scale parameters so the same
code drives both the full paper-scale reproduction and the quick versions
used by tests and CI-sized benchmark runs.

A figure is "scenario x solver list": workloads, catalogs and estimators are
constructed exclusively through the scenario registry
(:mod:`repro.scenarios`), and the optimizers run through the uniform
``Solver.solve(EvaluationContext)`` protocol (:mod:`repro.core.solver`) --
the results are bitwise identical to the historical hand-wired setups.

Functions return a dictionary with structured results plus a ``"text"`` entry
containing a rendered table, so benchmarks can both assert on the numbers and
print something a human can compare against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import scenarios
from repro.core.advisor import ProvisioningAdvisor
from repro.core.discrete_cost import DiscreteCostModel
from repro.core.layout import Layout
from repro.core.profiler import WorkloadProfiler
from repro.core.provisioning import GeneralizedProvisioner, ProvisioningOption
from repro.core.simple_layouts import simple_layouts
from repro.core.solver import DOTSolver, ExhaustiveSolver, MILPSolver, ObjectAdvisorSolver
from repro.experiments.reporting import (
    format_evaluations,
    format_layout_assignment,
    format_table,
)
from repro.experiments.runner import ExperimentRunner, run_solver_matrix
from repro.sla.constraints import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.storage.microbench import MicroBenchmark, format_table1


# ---------------------------------------------------------------------------
# Shared plumbing (deprecated shims; construction lives in repro.scenarios)
# ---------------------------------------------------------------------------

_TPCH_SCENARIOS = {
    "original": "tpch_original",
    "modified": "tpch_modified",
    "es-subset": "tpch_es_subset",
}


def _tpch_bundle(workload_kind: str, scale_factor: float,
                 repetitions: Optional[int], sla_ratio: float = 0.5):
    """The TPC-H scenario bundle for a workload kind (registry-backed)."""
    try:
        name = _TPCH_SCENARIOS[workload_kind]
    except KeyError:
        raise ValueError(f"unknown TPC-H workload kind {workload_kind!r}") from None
    overrides = {"scale_factor": scale_factor, "sla_ratio": sla_ratio}
    if repetitions is not None:
        overrides["repetitions"] = repetitions
    return scenarios.build(name, **overrides)


def _tpch_setup(scale_factor: float, workload_kind: str, repetitions: Optional[int]):
    """Deprecated: use ``repro.scenarios.build("tpch_*")``.

    Retained so pre-registry callers keep working; returns the bundle's
    ``(catalog, workload, estimator)`` triple unchanged.
    """
    bundle = _tpch_bundle(workload_kind, scale_factor, repetitions)
    return bundle.catalog, bundle.workload, bundle.estimator


def _tpcc_setup(warehouses: int, concurrency: int = 300):
    """Deprecated: use ``repro.scenarios.build("tpcc_fig8")``.

    Retained so pre-registry callers keep working; returns the bundle's
    ``(catalog, workload, estimator)`` triple unchanged.
    """
    bundle = scenarios.build("tpcc_fig8", warehouses=warehouses, concurrency=concurrency)
    return bundle.catalog, bundle.workload, bundle.estimator


# ---------------------------------------------------------------------------
# Table 1 and Table 2
# ---------------------------------------------------------------------------

def table1(concurrencies: Sequence[int] = (1, 300)) -> Dict[str, object]:
    """Regenerate Table 1: storage prices and measured I/O profiles."""
    classes = storage_catalog.all_storage_classes()
    prices = {name: sc.price_cents_per_gb_hour for name, sc in classes.items()}
    bench = MicroBenchmark()
    rows = bench.profile_all(classes, concurrencies)
    return {
        "prices_cents_per_gb_hour": prices,
        "published_prices": dict(storage_catalog.PUBLISHED_PRICES_CENTS_PER_GB_HOUR),
        "profiles": rows,
        "text": format_table1(rows, prices),
    }


def table2() -> Dict[str, object]:
    """Regenerate Table 2: device specifications."""
    devices = storage_catalog.ALL_DEVICES
    headers = ["Attribute"] + list(devices)
    attribute_rows = [
        ["Brand & model"] + [spec.name for spec in devices.values()],
        ["Flash type"] + [spec.flash_type or "N/A" for spec in devices.values()],
        ["Capacity (GB)"] + [spec.capacity_gb for spec in devices.values()],
        ["Interface"] + [spec.interface for spec in devices.values()],
        ["RPM"] + [spec.rpm or "N/A" for spec in devices.values()],
        ["Cache (MB)"] + [spec.cache_mb or "N/A" for spec in devices.values()],
        ["Purchase cost ($)"] + [spec.purchase_cost_usd for spec in devices.values()],
        ["Power (W)"] + [spec.power_watts for spec in devices.values()],
    ]
    return {"devices": devices, "text": format_table(headers, attribute_rows)}


# ---------------------------------------------------------------------------
# TPC-H comparisons (Figures 3-7)
# ---------------------------------------------------------------------------

def tpch_comparison(
    box_name: str = "Box 1",
    sla_ratio: float = 0.5,
    workload_kind: str = "original",
    scale_factor: float = 20.0,
    repetitions: Optional[int] = None,
    include_object_advisor: bool = True,
) -> Dict[str, object]:
    """Cost/performance comparison of DOT, OA and the simple layouts.

    This single driver, parameterised by workload kind and SLA ratio,
    regenerates Figures 3 (original, 0.5), 5 (modified, 0.5) and 7
    (modified, 0.25), together with the DOT layouts shown in Figures 4 and 6.
    """
    bundle = _tpch_bundle(workload_kind, scale_factor, repetitions, sla_ratio)
    workload, estimator, objects = bundle.workload, bundle.estimator, bundle.objects
    system = scenarios.box_system(box_name)
    runner = ExperimentRunner(objects, system, estimator)
    sla = RelativeSLA(sla_ratio, metric="response_time")
    measured_constraint = runner.resolve_constraint(workload, sla, mode="run")

    layouts: Dict[str, Layout] = dict(simple_layouts(objects, system))

    advisor = ProvisioningAdvisor(objects, system, estimator)
    recommendation = advisor.recommend(workload, sla=sla)
    layouts["DOT"] = recommendation.layout

    oa_layout = None
    if include_object_advisor:
        oa_result = ObjectAdvisorSolver().solve(bundle.context(system=system, sla=sla))
        oa_layout = oa_result.layout
        layouts["OA"] = oa_layout

    evaluations = runner.evaluate_layouts(layouts, workload, sla=measured_constraint)
    evaluations.sort(key=lambda evaluation: evaluation.toc_cents)
    return {
        "box": box_name,
        "workload": workload.name,
        "sla_ratio": sla_ratio,
        "constraint": measured_constraint,
        "evaluations": evaluations,
        "dot_layout": recommendation.layout,
        "dot_recommendation": recommendation,
        "oa_layout": oa_layout,
        "text": format_evaluations(evaluations, metric_label="Response time (s)"),
    }


def figure3(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 3: original TPC-H workload at relative SLA 0.5 on both boxes."""
    return {
        box_name: tpch_comparison(box_name, 0.5, "original", scale_factor, repetitions)
        for box_name in ("Box 1", "Box 2")
    }


def figure4(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 4: the DOT layouts recommended for the original workload (SLA 0.5)."""
    results = figure3(scale_factor, repetitions)
    return {
        box_name: {
            "layout": result["dot_layout"],
            "text": format_layout_assignment(result["dot_layout"]),
        }
        for box_name, result in results.items()
    }


def figure5(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 5: modified TPC-H workload at relative SLA 0.5 on both boxes."""
    return {
        box_name: tpch_comparison(box_name, 0.5, "modified", scale_factor, repetitions)
        for box_name in ("Box 1", "Box 2")
    }


def figure6(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 6: the DOT layouts recommended for the modified workload (SLA 0.5)."""
    results = figure5(scale_factor, repetitions)
    return {
        box_name: {
            "layout": result["dot_layout"],
            "text": format_layout_assignment(result["dot_layout"]),
        }
        for box_name, result in results.items()
    }


def figure7(scale_factor: float = 20.0, repetitions: Optional[int] = None) -> Dict[str, object]:
    """Figure 7: modified TPC-H workload at relative SLA 0.25 on both boxes."""
    return {
        box_name: tpch_comparison(box_name, 0.25, "modified", scale_factor, repetitions)
        for box_name in ("Box 1", "Box 2")
    }


# ---------------------------------------------------------------------------
# Heuristics vs exhaustive search on TPC-H (Section 4.4.3)
# ---------------------------------------------------------------------------

def es_vs_dot_tpch(
    scale_factor: float = 20.0,
    sla_ratio: float = 0.5,
    capacity_limits_gb: Optional[Mapping[str, Mapping[str, float]]] = None,
    repetitions: int = 3,
    es_workers: int = 1,
    full_object_set: bool = False,
    es_max_layouts: int = 500_000,
) -> Dict[str, object]:
    """Section 4.4.3: DOT vs exhaustive search on the reduced TPC-H workload.

    ``capacity_limits_gb`` maps box name to per-class capacity limits, e.g.
    ``{"Box 1": {"HDD RAID 0": 24.0}, "Box 2": {"HDD": 8.0}}``.

    The paper restricts the enumeration to eight objects because ``M^N`` is
    exponential; ``full_object_set=True`` enumerates *all* TPC-H objects (the
    full ``3^19``-layout space per box) instead, which is practical through
    the sharded, pruned parallel engine -- pass ``es_workers > 1`` (the
    layout-count guard then becomes soft).  Results per configuration are
    bitwise identical to the serial search.
    """
    bundle = _tpch_bundle("es-subset", scale_factor, repetitions, sla_ratio)
    if full_object_set:
        objects = bundle.objects
    else:
        objects = bundle.objects_named(bundle.extras["es_object_names"])
    limits = capacity_limits_gb or {"Box 1": {}, "Box 2": {}}
    results: Dict[str, Dict[str, object]] = {}

    for box_name, box_limits in limits.items():
        system = scenarios.box_system(box_name, capacity_limits_gb=box_limits)
        runner = ExperimentRunner(objects, system, bundle.estimator)
        # The context resolves the estimate-derived search constraint and
        # owns the one estimate table serving profiling, DOT's walk and the
        # exhaustive enumeration: every (query, touched-placement-signature)
        # pair is estimated once for the whole comparison.
        context = bundle.context(system=system, objects=objects)
        constraint = runner.resolve_constraint(
            bundle.workload, RelativeSLA(sla_ratio), mode="run"
        )

        outcomes = run_solver_matrix(
            context,
            [
                DOTSolver(),
                ExhaustiveSolver(workers=es_workers, max_layouts=es_max_layouts),
            ],
        )
        dot_result, es_result = outcomes["dot"], outcomes["es"]

        comparison: Dict[str, object] = {
            "constraint": constraint,
            "dot": dot_result,
            "es": es_result,
            "dot_elapsed_s": dot_result.elapsed_s,
            "es_elapsed_s": es_result.elapsed_s,
            "dot_evaluated": dot_result.evaluated_layouts,
            "es_evaluated": es_result.evaluated_layouts,
            "es_stats": es_result.stats.batch,
        }
        rows = []
        for label, outcome in (("DOT", dot_result), ("ES", es_result)):
            if outcome.feasible:
                evaluation = runner.evaluate_layout(outcome.layout, bundle.workload, constraint)
                comparison[f"{label.lower()}_evaluation"] = evaluation
                rows.append(
                    [label, evaluation.response_time_s, evaluation.toc_cents,
                     outcome.evaluated_layouts, outcome.elapsed_s]
                )
            else:
                rows.append([label, float("nan"), float("nan"),
                             outcome.evaluated_layouts, outcome.elapsed_s])
        comparison["text"] = format_table(
            ["Method", "Response time (s)", "TOC (cents)", "Layouts", "Search time (s)"], rows
        )
        results[box_name] = comparison
    return results


def tpch_es_objects() -> Tuple[str, ...]:
    """The eight objects of the Section 4.4.3 study."""
    from repro.workloads.tpch.queries import ES_SUBSET_OBJECTS

    return ES_SUBSET_OBJECTS


# ---------------------------------------------------------------------------
# TPC-C experiments (Figure 8, Table 3, Figure 9)
# ---------------------------------------------------------------------------

def figure8_box(
    box_name: str,
    warehouses: int = 300,
    sla_ratios: Sequence[float] = (0.5, 0.25, 0.125),
    concurrency: int = 300,
) -> Dict[str, object]:
    """One Figure 8 arm: TPC-C tpmC versus TOC on a single box.

    Builds its scenario bundle freshly, so one arm is independently
    reproducible -- the unit the experiment orchestrator records and the
    store-driven figure pipeline reassembles.
    """
    bundle = scenarios.build("tpcc_fig8", warehouses=warehouses, concurrency=concurrency)
    workload, estimator, objects = bundle.workload, bundle.estimator, bundle.objects
    system = scenarios.box_system(box_name)
    runner = ExperimentRunner(objects, system, estimator)
    profiler = WorkloadProfiler(objects, system, estimator)
    # The paper profiles TPC-C on a single All H-SSD baseline via a test
    # run, because the (random-I/O) plans never change with the layout.
    single_pattern = profiler.single_baseline_pattern()
    profiles = profiler.profile(workload, mode="testrun", patterns=[single_pattern])

    layouts: Dict[str, Layout] = dict(simple_layouts(objects, system))
    dot_layouts: Dict[str, Layout] = {}
    per_sla = {}
    for ratio in sla_ratios:
        constraint = runner.resolve_constraint(
            workload, RelativeSLA(ratio, metric="throughput"), mode="estimate"
        )
        context = bundle.context(system=system, sla=constraint, profiles=profiles)
        outcome = DOTSolver().solve(context)
        per_sla[ratio] = outcome
        if outcome.feasible:
            name = f"DOT (SLA {ratio:g})"
            dot_layouts[name] = outcome.layout.renamed(name)
    layouts.update(dot_layouts)
    evaluations = runner.evaluate_layouts(layouts, workload, sla=None)
    evaluations.sort(key=lambda evaluation: -(evaluation.transactions_per_minute or 0.0))
    return {
        "evaluations": evaluations,
        "dot_results": per_sla,
        "text": format_evaluations(evaluations, metric_label="tpmC"),
    }


def figure8(
    warehouses: int = 300,
    sla_ratios: Sequence[float] = (0.5, 0.25, 0.125),
    concurrency: int = 300,
) -> Dict[str, object]:
    """Figure 8: TPC-C tpmC versus TOC for DOT (per SLA) and the simple layouts."""
    return {
        box_name: figure8_box(box_name, warehouses, sla_ratios, concurrency)
        for box_name in ("Box 1", "Box 2")
    }


def table3(
    warehouses: int = 300,
    sla_ratios: Sequence[float] = (0.5, 0.25, 0.125),
    concurrency: int = 300,
) -> Dict[str, object]:
    """Table 3: the DOT layouts on Box 2 for TPC-C under each relative SLA."""
    bundle = scenarios.build("tpcc_fig8", warehouses=warehouses, concurrency=concurrency)
    workload, estimator, objects = bundle.workload, bundle.estimator, bundle.objects
    system = scenarios.box_system("Box 2")
    runner = ExperimentRunner(objects, system, estimator)
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(
        workload, mode="testrun", patterns=[profiler.single_baseline_pattern()]
    )
    layouts: Dict[float, Layout] = {}
    for ratio in sla_ratios:
        constraint = runner.resolve_constraint(
            workload, RelativeSLA(ratio, metric="throughput"), mode="estimate"
        )
        context = bundle.context(system=system, sla=constraint, profiles=profiles)
        outcome = DOTSolver().solve(context)
        if outcome.feasible:
            layouts[ratio] = outcome.layout
    text_parts = []
    for ratio, layout in layouts.items():
        text_parts.append(f"--- relative SLA {ratio:g} ---")
        text_parts.append(format_layout_assignment(layout))
    return {"layouts": layouts, "text": "\n".join(text_parts)}


def figure9(
    warehouses: int = 300,
    sla_ratio: float = 0.25,
    hssd_capacity_limits_gb: Sequence[Optional[float]] = (None, 21.0),
    concurrency: int = 300,
    hot_groups: Optional[Sequence[str]] = ("stock", "order_line", "customer"),
    es_workers: int = 1,
    es_max_layouts: int = 500_000,
) -> Dict[str, object]:
    """Figure 9 / Section 4.5.3: ES vs DOT for TPC-C under H-SSD capacity limits.

    The paper's exhaustive search over all TPC-C objects is intractable to
    enumerate on one core (3^19 layouts); by default the enumeration is
    restricted to the objects that dominate the I/O -- the ``hot_groups``
    tables and their indexes -- with the remaining (small or rarely touched)
    objects pinned to the cheapest class.  DOT runs over the same restricted
    object set so that the DOT-vs-ES comparison stays apples to apples.

    ``hot_groups=None`` enumerates *every* TPC-C object (the paper's full
    ``3^19`` space); combine it with ``es_workers > 1`` so the sharded,
    pruned parallel engine carries the enumeration (the layout-count guard
    then becomes soft).
    """
    return {
        figure9_limit_label(limit): figure9_arm(
            limit,
            warehouses=warehouses,
            sla_ratio=sla_ratio,
            concurrency=concurrency,
            hot_groups=hot_groups,
            es_workers=es_workers,
            es_max_layouts=es_max_layouts,
        )
        for limit in hssd_capacity_limits_gb
    }


def figure9_limit_label(limit: Optional[float]) -> str:
    """The display label of one Figure 9 capacity-limit arm."""
    return f"H-SSD limit {limit:g} GB" if limit is not None else "No limit"


def figure9_arm(
    limit: Optional[float],
    warehouses: int = 300,
    sla_ratio: float = 0.25,
    concurrency: int = 300,
    hot_groups: Optional[Sequence[str]] = ("stock", "order_line", "customer"),
    es_workers: int = 1,
    es_max_layouts: int = 500_000,
    es_checkpoint_path=None,
) -> Dict[str, object]:
    """One Figure 9 arm: ES vs DOT under a single H-SSD capacity limit.

    Builds its scenario bundle freshly so one arm is independently
    reproducible (the unit the experiment orchestrator records), and
    optionally persists the parallel enumeration's
    :class:`~repro.core.parallel_search.SearchProgress` to
    ``es_checkpoint_path`` so an interrupted full-space sweep resumes from
    its last completed shard.
    """
    bundle = scenarios.build(
        "fig9_tpcc", warehouses=warehouses, concurrency=concurrency, sla_ratio=sla_ratio
    )
    workload, estimator, all_objects = bundle.workload, bundle.estimator, bundle.objects
    if hot_groups is None:
        hot = list(all_objects)
        cold = []
    else:
        hot = [obj for obj in all_objects if (obj.table or obj.name) in set(hot_groups)]
        cold = [obj for obj in all_objects if obj not in hot]

    limits = {"H-SSD": limit} if limit is not None else {}
    system = scenarios.box_system("Box 2", capacity_limits_gb=limits)
    pinned_class = system.most_expensive().name

    runner = ExperimentRunner(all_objects, system, estimator)
    # The context resolves the estimate-derived search constraint, owns
    # the estimate table DOT's walk and the enumeration share (the
    # test-run profiling cannot use it), and profiles lazily on the
    # single all-fast baseline the scenario prescribes.
    context = bundle.context(system=system)
    constraint = runner.resolve_constraint(
        workload, RelativeSLA(sla_ratio, metric="throughput"), mode="run"
    )

    outcomes = run_solver_matrix(
        context,
        [
            # DOT over the full object set (as the paper does).
            DOTSolver(),
            # ES over the hot objects with the cold objects pinned.
            ExhaustiveSolver(
                objects=hot,
                per_group=True,
                pinned_objects=cold,
                pinned_class=pinned_class,
                workers=es_workers,
                max_layouts=es_max_layouts,
                checkpoint_path=es_checkpoint_path,
            ),
        ],
    )
    dot_outcome, es_outcome = outcomes["dot"], outcomes["es"]

    rows = []
    entry: Dict[str, object] = {
        "constraint": constraint,
        "dot": dot_outcome,
        "es": es_outcome,
        "es_stats": es_outcome.stats.batch,
    }
    for method, outcome in (("DOT", dot_outcome), ("ES", es_outcome)):
        if not outcome.feasible:
            rows.append([method, float("nan"), float("nan"), outcome.elapsed_s])
            continue
        evaluation = runner.evaluate_layout(
            outcome.layout.renamed(method), workload, constraint
        )
        entry[f"{method.lower()}_evaluation"] = evaluation
        rows.append(
            [method, evaluation.transactions_per_minute, evaluation.toc_cents,
             outcome.elapsed_s]
        )
    entry["text"] = format_table(["Method", "tpmC", "TOC (cents/txn)", "Search time (s)"], rows)
    return entry


# ---------------------------------------------------------------------------
# Section 5 extensions and ablations
# ---------------------------------------------------------------------------

def generalized_provisioning(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    repetitions: int = 1,
) -> Dict[str, object]:
    """Section 5.1: choose the storage configuration (box) and the layout."""
    bundle = _tpch_bundle("original", scale_factor, repetitions, sla_ratio)
    options = [
        ProvisioningOption("Box 1", scenarios.box_system("Box 1"),
                           "HDD RAID 0 + L-SSD + H-SSD"),
        ProvisioningOption("Box 2", scenarios.box_system("Box 2"),
                           "HDD + L-SSD RAID 0 + H-SSD"),
        ProvisioningOption(
            "All classes", scenarios.box_system("All classes"),
            "hypothetical box with all five classes"
        ),
    ]
    provisioner = GeneralizedProvisioner(bundle.objects, bundle.estimator)
    decision = provisioner.decide(bundle.workload, options, sla=RelativeSLA(sla_ratio))
    return {"decision": decision, "text": decision.describe()}


def discrete_cost_experiment(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    alphas: Sequence[float] = (0.0, 0.5, 1.0),
    repetitions: int = 1,
) -> Dict[str, object]:
    """Section 5.2: DOT under the discrete-sized storage cost model."""
    bundle = _tpch_bundle("original", scale_factor, repetitions, sla_ratio)
    workload, estimator, objects = bundle.workload, bundle.estimator, bundle.objects
    system = scenarios.box_system("Box 1")
    runner = ExperimentRunner(objects, system, estimator)
    constraint = runner.resolve_constraint(workload, RelativeSLA(sla_ratio), mode="estimate")
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(workload, mode="estimate")

    rows = []
    per_alpha: Dict[float, object] = {}
    for alpha in alphas:
        context = bundle.context(
            system=system, sla=constraint, profiles=profiles,
            cost_override=DiscreteCostModel(alpha=alpha),
        )
        outcome = DOTSolver().solve(context)
        per_alpha[alpha] = outcome
        if outcome.feasible:
            classes_used = sum(
                1 for _, used in outcome.layout.space_used_gb().items() if used > 0
            )
            rows.append([alpha, outcome.toc_cents, classes_used])
        else:
            rows.append([alpha, float("nan"), 0])
    return {
        "results": per_alpha,
        "text": format_table(["alpha", "TOC (cents)", "classes used"], rows),
    }


def ablation_grouping(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    repetitions: int = 4,
) -> Dict[str, object]:
    """Ablation: DOT's object groups vs per-object (layout-interaction-blind) moves."""
    bundle = _tpch_bundle("modified", scale_factor, repetitions, sla_ratio)
    workload, objects = bundle.workload, bundle.objects
    system = scenarios.box_system("Box 1")
    runner = ExperimentRunner(objects, system, bundle.estimator)
    context = bundle.context(system=system)

    rows = []
    outcomes = {}
    for label, independent in (("grouped (DOT)", False), ("independent objects", True)):
        outcome = DOTSolver(independent_objects=independent).solve(context)
        outcomes[label] = outcome
        if outcome.feasible:
            evaluation = runner.evaluate_layout(outcome.layout, workload, context.constraint)
            rows.append([label, evaluation.response_time_s, evaluation.toc_cents, evaluation.psr])
        else:
            rows.append([label, float("nan"), float("nan"), 0.0])
    return {
        "results": outcomes,
        "text": format_table(["Enumeration", "Response time (s)", "TOC (cents)", "PSR"], rows),
    }


def ablation_ilp(
    scale_factor: float = 4.0,
    sla_ratio: float = 0.5,
    repetitions: int = 3,
) -> Dict[str, object]:
    """Ablation: DOT's greedy walk vs the exact MILP relaxation."""
    bundle = _tpch_bundle("es-subset", scale_factor, repetitions, sla_ratio)
    objects = bundle.objects_named(bundle.extras["es_object_names"])
    system = scenarios.box_system("Box 1")
    context = bundle.context(system=system, objects=objects)

    outcomes = run_solver_matrix(
        context,
        [
            DOTSolver(),
            # The MILP's time budget is the all-fast layout's profiled I/O
            # time share scaled by the SLA ratio (derived from the context).
            MILPSolver(),
        ],
    )
    dot_outcome, milp_outcome = outcomes["dot"], outcomes["milp"]

    rows = []
    results = {"dot": dot_outcome, "milp": milp_outcome}
    if dot_outcome.feasible:
        rows.append(["DOT", dot_outcome.toc_cents, dot_outcome.elapsed_s])
    if milp_outcome.feasible:
        results["milp_report"] = milp_outcome.toc_report
        rows.append(["MILP", milp_outcome.toc_cents, milp_outcome.elapsed_s])
    return {
        "results": results,
        "text": format_table(["Method", "TOC (cents)", "Solve time (s)"], rows),
    }
