"""Experiment harness reproducing every table and figure of the paper's evaluation."""

from repro.experiments.boxes import box1, box2, both_boxes
from repro.experiments.runner import ExperimentRunner, LayoutEvaluation, run_solver_matrix
from repro.experiments import figures, reporting

__all__ = [
    "box1",
    "box2",
    "both_boxes",
    "ExperimentRunner",
    "LayoutEvaluation",
    "run_solver_matrix",
    "drift",
    "figures",
    "orchestrator",
    "reporting",
    "specs",
    "store",
]

#: Submodules resolved lazily: drift pulls in the whole repro.online
#: subsystem, and the orchestration layer (store/specs/orchestrator) is only
#: needed by sweep entry points -- loading them on demand keeps a plain
#: `import repro.experiments` light and independent of import ordering.
_LAZY_SUBMODULES = ("drift", "orchestrator", "specs", "store")


def __getattr__(name):
    # importlib (rather than a from-import) avoids re-entering this
    # __getattr__ through the import system's own hasattr probe, which would
    # recurse without terminating.
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.experiments.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
