"""Experiment harness reproducing every table and figure of the paper's evaluation."""

from repro.experiments.boxes import box1, box2, both_boxes
from repro.experiments.runner import ExperimentRunner, LayoutEvaluation
from repro.experiments import figures, reporting

__all__ = [
    "box1",
    "box2",
    "both_boxes",
    "ExperimentRunner",
    "LayoutEvaluation",
    "drift",
    "figures",
    "reporting",
]


def __getattr__(name):
    # The drift driver pulls in the whole repro.online subsystem; loading it
    # lazily keeps `import repro.experiments` independent of it (and of any
    # future online<->experiments import ordering).
    if name == "drift":
        from repro.experiments import drift as module

        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
