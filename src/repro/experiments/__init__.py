"""Experiment harness reproducing every table and figure of the paper's evaluation."""

from repro.experiments.boxes import box1, box2, both_boxes
from repro.experiments.runner import ExperimentRunner, LayoutEvaluation
from repro.experiments import figures, reporting

__all__ = [
    "box1",
    "box2",
    "both_boxes",
    "ExperimentRunner",
    "LayoutEvaluation",
    "figures",
    "reporting",
]
