"""Experiment harness reproducing every table and figure of the paper's evaluation."""

from repro.experiments.boxes import box1, box2, both_boxes
from repro.experiments.runner import ExperimentRunner, LayoutEvaluation, run_solver_matrix
from repro.experiments import figures, reporting

__all__ = [
    "box1",
    "box2",
    "both_boxes",
    "ExperimentRunner",
    "LayoutEvaluation",
    "run_solver_matrix",
    "drift",
    "figures",
    "reporting",
]


def __getattr__(name):
    # The drift driver pulls in the whole repro.online subsystem; loading it
    # lazily keeps `import repro.experiments` independent of it (and of any
    # future online<->experiments import ordering).  importlib (rather than a
    # from-import) avoids re-entering this __getattr__ through the import
    # system's own hasattr probe, which would recurse without terminating.
    if name == "drift":
        import importlib

        return importlib.import_module("repro.experiments.drift")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
