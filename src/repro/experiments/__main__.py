"""CLI for the experiment orchestration layer.

Three subcommands drive the whole sweep lifecycle against one SQLite store::

    python -m repro.experiments run      # diff matrix vs store, run the rest
    python -m repro.experiments report   # what the store holds
    python -m repro.experiments figures  # regenerate figures FROM the store

``figures`` writes every assembled figure/table as JSON (and prints the
rendered text tables with ``--text``); ``--check DIR`` compares the
deterministic data zones against golden JSON files and fails on any
mismatch, ``--write-golden DIR`` refreshes those files.  An interrupted
``run`` is resumed by re-invoking it: already recorded specs are skipped via
the store diff, and partially enumerated Figure 9 searches resume from their
per-signature checkpoints under ``--checkpoint-dir``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

#: Default store location; kept under benchmarks/out/ which is gitignored.
DEFAULT_STORE = Path("benchmarks") / "out" / "experiments.sqlite"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Populate, inspect, and render the experiment results store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--store", type=Path, default=DEFAULT_STORE,
            help=f"results store path (default: {DEFAULT_STORE})",
        )

    run = sub.add_parser("run", help="execute the specs missing from the store")
    common(run)
    run.add_argument("--scale", choices=("small", "paper"), default="paper")
    run.add_argument(
        "--figures", default=None,
        help="comma-separated figures to cover (default: all)",
    )
    run.add_argument("--workers", type=int, default=1)
    run.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for resumable in-spec search checkpoints",
    )
    run.add_argument(
        "--dry-run", action="store_true",
        help="print the matrix diff without executing anything",
    )

    report = sub.add_parser("report", help="list what the store holds")
    common(report)

    figures = sub.add_parser(
        "figures", help="regenerate paper figures/tables from the store"
    )
    common(figures)
    figures.add_argument("--scale", choices=("small", "paper"), default="paper")
    figures.add_argument("--figures", default=None)
    figures.add_argument(
        "--out", type=Path, default=None,
        help="directory to write assembled <figure>.json files into",
    )
    figures.add_argument(
        "--check", type=Path, default=None, metavar="GOLDEN_DIR",
        help="compare deterministic figure data against golden JSONs; fail on drift",
    )
    figures.add_argument(
        "--write-golden", type=Path, default=None, metavar="GOLDEN_DIR",
        help="write/refresh the golden JSONs from the assembled figures",
    )
    figures.add_argument(
        "--text", action="store_true", help="print the rendered text tables"
    )
    return parser


def _figure_list(value: Optional[str]) -> List[str]:
    from repro.experiments import specs

    if value is None:
        return list(specs.FIGURES)
    wanted = [name.strip() for name in value.split(",") if name.strip()]
    unknown = sorted(set(wanted) - set(specs.FIGURES))
    if unknown:
        raise SystemExit(
            f"unknown figures {unknown}; expected a subset of {list(specs.FIGURES)}"
        )
    return wanted


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import orchestrator, specs
    from repro.experiments.store import ResultsStore

    store = ResultsStore(args.store)
    figures_wanted = _figure_list(args.figures)
    matrix = specs.matrix(args.scale, figures_wanted)
    missing, present = orchestrator.plan(matrix, store)
    print(
        f"matrix: {len(matrix)} specs ({args.scale}), "
        f"{len(present)} stored, {len(missing)} to run"
    )
    if args.dry_run:
        for spec in missing:
            print(f"  would run {spec.experiment:<10} {spec.signature[:12]}  "
                  f"{spec.canonical_json()}")
        return 0
    report = orchestrator.run_specs(
        matrix,
        store,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        log=print,
    )
    print(report.summary())
    return 0 if report.complete else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.store import ResultsStore

    store = ResultsStore(args.store)
    records = store.load_all()
    print(f"store {store.path}: {len(records)} runs")
    for record in records:
        created = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.record.created_unix_s)
        )
        print(
            f"  {record.signature[:12]}  {record.experiment:<10} "
            f"{record.spec.scenario:<14} {record.spec.solver:<14} "
            f"rev={record.record.git_rev or '-':<10} "
            f"{record.record.elapsed_s:8.2f}s  {created}"
        )
    by_kind: dict = {}
    for record in records:
        by_kind[record.experiment] = by_kind.get(record.experiment, 0) + 1
    if by_kind:
        print("by experiment: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(by_kind.items())
        ))
    return 0


def _dump(payload: object) -> str:
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import orchestrator, specs
    from repro.experiments.store import ResultsStore

    store = ResultsStore(args.store)
    lookup = orchestrator.store_lookup(store)
    figures_wanted = _figure_list(args.figures)
    assembled = {}
    for figure in figures_wanted:
        try:
            assembled[figure] = specs.assemble_figure(figure, lookup, args.scale)
        except KeyError as exc:
            print(f"figures: {exc.args[0]}", file=sys.stderr)
            return 1

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for figure, payload in assembled.items():
            (args.out / f"{figure}.json").write_text(_dump(payload))
        print(f"wrote {len(assembled)} figure JSONs to {args.out}")

    if args.text:
        for figure, payload in assembled.items():
            print(f"===== {figure} =====")
            print(_render_text(payload))

    if args.write_golden is not None:
        args.write_golden.mkdir(parents=True, exist_ok=True)
        for figure, payload in assembled.items():
            path = args.write_golden / f"{figure}.json"
            path.write_text(_dump(specs.strip_timing(payload)))
        print(f"wrote {len(assembled)} goldens to {args.write_golden}")

    if args.check is not None:
        checked = 0
        drifted: List[str] = []
        for figure, payload in assembled.items():
            path = args.check / f"{figure}.json"
            if not path.exists():
                continue
            checked += 1
            golden = json.loads(path.read_text())
            if specs.strip_timing(payload) != golden:
                drifted.append(figure)
        if checked == 0:
            print(f"figures --check: no goldens found in {args.check}", file=sys.stderr)
            return 1
        if drifted:
            print(
                f"figures --check: {len(drifted)}/{checked} figures drifted from "
                f"their goldens: {', '.join(drifted)}",
                file=sys.stderr,
            )
            return 1
        print(f"figures --check: {checked} figures match their goldens")
    return 0


def _render_text(payload: object, depth: int = 0) -> str:
    """Pull the rendered ``text`` tables out of an assembled figure."""
    if isinstance(payload, dict):
        if "text" in payload and isinstance(payload["text"], str):
            return payload["text"]
        parts = []
        for key, value in payload.items():
            inner = _render_text(value, depth + 1)
            if inner:
                parts.append(f"--- {key} ---\n{inner}" if depth == 0 else inner)
        return "\n".join(parts)
    return ""


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_figures(args)


if __name__ == "__main__":
    sys.exit(main())
