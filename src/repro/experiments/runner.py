"""Experiment runner: measure layouts against workloads the way the paper reports them.

For each candidate layout the runner performs a simulated "real" run of the
workload, computes the measured TOC, the performance metric (workload
response time for DSS, tpmC for OLTP) and the PSR against the relative SLA
resolved from the all-H-SSD (best performing) layout.

:func:`run_solver_matrix` is the experiment layer's "scenario x solver list"
primitive: it runs any sequence of protocol-conforming solvers against one
:class:`~repro.core.context.EvaluationContext` (sharing its estimate cache)
and returns their uniform :class:`~repro.core.solver.SolveResult`\\ s by
solver name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.context import EvaluationContext
from repro.core.layout import Layout
from repro.core.solver import Solver, SolveResult
from repro.exceptions import ConfigurationError
from repro.core.toc import TOCModel, TOCReport
from repro.objects import DatabaseObject
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.sla.psr import performance_satisfaction_ratio
from repro.storage.storage_class import StorageSystem


@dataclass
class LayoutEvaluation:
    """Measured metrics of one layout for one workload."""

    layout_name: str
    toc_cents: float
    layout_cost_cents_per_hour: float
    response_time_s: Optional[float]
    transactions_per_minute: Optional[float]
    psr: float
    report: TOCReport = field(repr=False, default=None)

    @property
    def performance_value(self) -> float:
        """The headline performance number (seconds for DSS, tpm for OLTP)."""
        if self.transactions_per_minute is not None:
            return self.transactions_per_minute
        return self.response_time_s if self.response_time_s is not None else float("nan")


def run_solver_matrix(
    context: EvaluationContext,
    solvers: Sequence[Solver],
) -> Dict[str, SolveResult]:
    """Run several solvers against one evaluation context, in order.

    Returns ``{solver.name: SolveResult}`` preserving the given order (so
    callers can iterate deterministically).  All solvers share the context's
    estimate cache: a (query, touched-placement-signature) pair estimated by
    one solver is a lookup for the next, exactly the sharing the figure
    drivers used to wire by hand.

    Duplicate solver names are refused *before* anything runs (the dict
    would silently keep only the last result); give same-type comparisons
    distinct per-instance names, e.g. ``solver.name = "es-parallel"``.
    """
    names = [getattr(solver, "name", type(solver).__name__) for solver in solvers]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ConfigurationError(
            f"run_solver_matrix got duplicate solver names {duplicates}; results "
            "are keyed by name, so one result per name would be silently lost -- "
            "set distinct per-instance `name` attributes"
        )
    results: Dict[str, SolveResult] = {}
    for name, solver in zip(names, solvers):
        results[name] = solver.solve(context)
    return results


class ExperimentRunner:
    """Evaluates sets of layouts under a common, measured relative SLA."""

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        cost_override=None,
    ):
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.toc_model = TOCModel(estimator, cost_override=cost_override)

    # ------------------------------------------------------------------
    def reference_layout(self) -> Layout:
        """The best-performing reference: everything on the most expensive class."""
        return Layout.uniform(self.objects, self.system, self.system.most_expensive().name)

    def resolve_constraint(
        self,
        workload,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]],
        mode: str = "run",
    ) -> Optional[PerformanceConstraint]:
        """Resolve a relative SLA against the reference (all-H-SSD) layout.

        ``mode="run"`` (default) resolves against a measured simulated run --
        the form used when reporting PSR, as the paper does.  ``mode="estimate"``
        resolves against optimizer estimates, which is what the DOT/ES search
        should consume so that estimates are compared against estimate-derived
        caps.
        """
        if sla is None or isinstance(sla, PerformanceConstraint):
            return sla
        reference = self.toc_model.evaluate(self.reference_layout(), workload, mode=mode)
        return sla.resolve(reference.run_result)

    # ------------------------------------------------------------------
    def evaluate_layout(
        self,
        layout: Layout,
        workload,
        constraint: Optional[PerformanceConstraint] = None,
    ) -> LayoutEvaluation:
        """Measure one layout: simulated run, TOC, performance metric and PSR."""
        report = self.toc_model.evaluate(layout, workload, mode="run")
        psr = 1.0
        if constraint is not None:
            psr = performance_satisfaction_ratio(constraint, report.run_result)
        return LayoutEvaluation(
            layout_name=layout.name,
            toc_cents=report.toc_cents,
            layout_cost_cents_per_hour=report.layout_cost_cents_per_hour,
            response_time_s=report.execution_time_s,
            transactions_per_minute=report.transactions_per_minute,
            psr=psr,
            report=report,
        )

    def evaluate_layouts(
        self,
        layouts: Dict[str, Layout],
        workload,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = None,
    ) -> List[LayoutEvaluation]:
        """Measure several layouts under one (shared) resolved constraint."""
        constraint = self.resolve_constraint(workload, sla)
        evaluations = []
        for name, layout in layouts.items():
            evaluation = self.evaluate_layout(layout.renamed(name), workload, constraint)
            evaluations.append(evaluation)
        return evaluations
