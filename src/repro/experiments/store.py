"""The durable experiment results store: specs, signatures, and SQLite.

Every paper figure used to be produced by a per-figure benchmark script whose
numbers lived only as transient CI artifacts.  This module is the substrate
that replaces that: an :class:`ExperimentSpec` names one experimental arm
(scenario, solver, seed, knobs) with a **content-addressed signature** (the
SHA-256 of its canonical JSON), and a :class:`ResultsStore` is a single
SQLite file recording one row per executed spec -- the spec itself, the
figure-data payload the run produced, and a :class:`~repro.obs.recorder.
RunRecord`-shaped provenance blob (git revision, seed, solve stats, metrics
snapshot, span coverage).  The orchestrator (:mod:`repro.experiments.
orchestrator`) diffs a declarative matrix against the store and executes only
the missing signatures; the ``figures`` CLI regenerates every paper figure
*from the store* with no hand-transcribed numbers.

Integrity rules, in the spirit of the checkpoint layer it mirrors:

* the store refuses files that are not SQLite databases or that fail to read
  (:class:`~repro.exceptions.CheckpointCorruptionError`), and healthy
  databases written under a different ``SCHEMA_VERSION``
  (:class:`~repro.exceptions.StoreSchemaError`) -- silently misreading a
  tampered or stale store is how wrong numbers end up in a paper;
* every row carries the SHA-256 of its payload JSON, verified on read;
* writes are idempotent: recording an already-present signature is a no-op
  (``INSERT OR IGNORE`` keyed by signature), so duplicate runs deduplicate
  and concurrent writers -- two sweep processes appending to one store --
  are safe under SQLite's own locking plus a generous busy timeout.

Floats round-trip bitwise through the store: payloads are serialized with
:func:`json.dumps` (shortest-repr floats, ``allow_nan=False`` -- use ``None``
for "no value", never NaN), so a payload read back compares ``==`` to the
payload recorded.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.exceptions import CheckpointCorruptionError, ConfigurationError, StoreSchemaError
from repro.obs.recorder import RunRecord

#: Version of the on-disk schema; bumped on any incompatible change.
SCHEMA_VERSION = 1

#: The 16-byte magic every SQLite 3 database file starts with.
_SQLITE_MAGIC = b"SQLite format 3\x00"

#: How long a writer waits on a locked database before giving up (seconds).
_BUSY_TIMEOUT_S = 30.0


def _canonical_value(value, path: str = "knobs"):
    """Deep-convert ``value`` to canonical JSON-native types.

    Tuples become lists, mapping keys must be strings, and anything JSON
    cannot represent exactly (sets, objects, NaN/inf) is refused -- a spec
    signature must be a pure function of portable data.
    """
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(
                f"spec field {path} is {value!r}; NaN/inf have no canonical JSON "
                "form -- use None"
            )
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item, f"{path}[{i}]") for i, item in enumerate(value)]
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"spec field {path} has non-string key {key!r}; knob mappings "
                    "must be JSON objects"
                )
            out[key] = _canonical_value(value[key], f"{path}.{key}")
        return out
    raise ConfigurationError(
        f"spec field {path} has unserializable type {type(value).__name__}; "
        "knobs must be JSON-native (str/int/float/bool/None/list/dict)"
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """One experimental arm: what to run, on what, with which knobs.

    ``experiment`` is the registered experiment kind (``"fig3"``, ``"fig9"``,
    ``"table1"``, ...), ``scenario`` the scenario-registry name the kind
    draws on, ``solver`` a label for the solver (set) it exercises, ``seed``
    the RNG seed threaded to the executor, and ``knobs`` the kind-specific
    parameters (box, scale factor, capacity limit, ...).  Two specs with the
    same canonical content share a :attr:`signature` regardless of knob
    insertion order or tuple-vs-list spelling; any content change produces a
    new signature -- the store is content-addressed by construction.
    """

    experiment: str
    scenario: str = ""
    solver: str = ""
    seed: int = 0
    knobs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ConfigurationError("an ExperimentSpec needs a non-empty experiment name")
        object.__setattr__(self, "knobs", _canonical_value(dict(self.knobs)))

    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, object]:
        """The spec as canonical JSON-native data."""
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "solver": self.solver,
            "seed": int(self.seed),
            "knobs": self.knobs,
        }

    def canonical_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators."""
        return json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @property
    def signature(self) -> str:
        """Content address: SHA-256 hex digest of the canonical JSON."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentSpec":
        """Rebuild a spec from its canonical dict (matrix files, store rows)."""
        known = {"experiment", "scenario", "solver", "seed", "knobs"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"experiment spec has unknown fields {unknown}; expected {sorted(known)}"
            )
        return cls(
            experiment=str(data.get("experiment", "")),
            scenario=str(data.get("scenario", "")),
            solver=str(data.get("solver", "")),
            seed=int(data.get("seed", 0)),
            knobs=dict(data.get("knobs", {})),
        )


def payload_checksum(payload_json: str) -> str:
    """SHA-256 of a payload's JSON serialization."""
    return hashlib.sha256(payload_json.encode("utf-8")).hexdigest()


def dump_payload(payload: Mapping[str, object]) -> str:
    """Serialize a payload the way the store does (bitwise round-trip)."""
    return json.dumps(payload, sort_keys=True, allow_nan=False)


@dataclass
class ExperimentRecord:
    """One stored run: the spec, its figure-data payload, and provenance."""

    spec: ExperimentSpec
    signature: str
    payload: Dict[str, object]
    #: RunRecord-shaped provenance: git rev, seed, stats, metrics, spans.
    record: RunRecord

    @property
    def experiment(self) -> str:
        """The experiment kind this run belongs to."""
        return self.spec.experiment


class ResultsStore:
    """A single-file SQLite store of experiment runs, keyed by signature.

    Connections are opened per operation (no long-lived handle), so one
    store object is safe to share across the orchestrator's worker threads
    and across processes appending concurrently.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._verify_or_init()

    # -- connection / schema -------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)
        conn.execute(f"PRAGMA busy_timeout = {int(_BUSY_TIMEOUT_S * 1000)}")
        return conn

    def _verify_or_init(self) -> None:
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing:
            with self.path.open("rb") as handle:
                magic = handle.read(len(_SQLITE_MAGIC))
            if magic != _SQLITE_MAGIC:
                raise CheckpointCorruptionError(
                    "results store is not a SQLite database (bad file header)",
                    path=self.path,
                )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with self._connect() as conn:
                if existing:
                    self._verify_schema(conn)
                    return
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta ("
                    " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES "
                    f"('schema_version', '{SCHEMA_VERSION}')"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS runs ("
                    " signature TEXT PRIMARY KEY,"
                    " experiment TEXT NOT NULL,"
                    " scenario TEXT,"
                    " solver TEXT,"
                    " seed INTEGER,"
                    " spec_json TEXT NOT NULL,"
                    " payload_json TEXT NOT NULL,"
                    " payload_sha256 TEXT NOT NULL,"
                    " record_json TEXT NOT NULL,"
                    " git_rev TEXT,"
                    " created_unix_s REAL,"
                    " elapsed_s REAL)"
                )
                # A freshly created file may still be a racing second writer's
                # view of an existing store; verify what actually landed.
                self._verify_schema(conn)
        except sqlite3.DatabaseError as exc:
            raise CheckpointCorruptionError(
                f"results store failed to open: {exc}", path=self.path
            ) from exc

    def _verify_schema(self, conn: sqlite3.Connection) -> None:
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            conn.execute("SELECT signature FROM runs LIMIT 1").fetchone()
        except sqlite3.DatabaseError as exc:
            raise CheckpointCorruptionError(
                f"results store is unreadable: {exc}", path=self.path
            ) from exc
        if row is None:
            raise StoreSchemaError(
                "results store records no schema_version",
                path=self.path, found=None, expected=SCHEMA_VERSION,
            )
        try:
            found = int(row[0])
        except (TypeError, ValueError):
            found = row[0]
        if found != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"results store schema_version {found!r} != supported "
                f"{SCHEMA_VERSION}; re-run the experiments into a fresh store",
                path=self.path, found=found, expected=SCHEMA_VERSION,
            )

    # -- writes --------------------------------------------------------
    def record(
        self,
        spec: ExperimentSpec,
        payload: Mapping[str, object],
        record: Optional[RunRecord] = None,
    ) -> ExperimentRecord:
        """Record one completed run; idempotent on the spec signature.

        Returns the row now in the store -- the freshly written one, or the
        pre-existing one when the signature was already recorded (duplicate
        runs deduplicate; first write wins).
        """
        signature = spec.signature
        payload_json = dump_payload(payload)
        if record is None:
            record = RunRecord(
                run_id=f"exp-{signature[:12]}",
                kind="experiment",
                solver=spec.solver,
                scenario=spec.scenario or None,
                seed=spec.seed,
                created_unix_s=time.time(),
            )
        record_json = record.to_json_line()
        try:
            with self._connect() as conn:
                conn.execute(
                    "INSERT OR IGNORE INTO runs (signature, experiment, scenario,"
                    " solver, seed, spec_json, payload_json, payload_sha256,"
                    " record_json, git_rev, created_unix_s, elapsed_s)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        signature,
                        spec.experiment,
                        spec.scenario,
                        spec.solver,
                        int(spec.seed),
                        spec.canonical_json(),
                        payload_json,
                        payload_checksum(payload_json),
                        record_json,
                        record.git_rev,
                        float(record.created_unix_s),
                        float(record.elapsed_s),
                    ),
                )
        except sqlite3.DatabaseError as exc:
            raise CheckpointCorruptionError(
                f"results store rejected a write: {exc}", path=self.path
            ) from exc
        stored = self.get(signature)
        assert stored is not None  # the row was just inserted or already present
        return stored

    # -- reads ---------------------------------------------------------
    def _row_to_record(self, row) -> ExperimentRecord:
        signature, spec_json, payload_json, payload_sha, record_json = row
        if payload_checksum(payload_json) != payload_sha:
            raise CheckpointCorruptionError(
                f"results store row {signature[:12]}... failed its payload "
                "checksum (tampered or torn write)",
                path=self.path,
            )
        spec = ExperimentSpec.from_dict(json.loads(spec_json))
        if spec.signature != signature:
            raise CheckpointCorruptionError(
                f"results store row {signature[:12]}... holds a spec whose "
                "content hashes differently (tampered row)",
                path=self.path,
            )
        return ExperimentRecord(
            spec=spec,
            signature=signature,
            payload=json.loads(payload_json),
            record=RunRecord.from_json_line(record_json),
        )

    _SELECT = (
        "SELECT signature, spec_json, payload_json, payload_sha256, record_json"
        " FROM runs"
    )

    def get(
        self, spec_or_signature: Union[ExperimentSpec, str]
    ) -> Optional[ExperimentRecord]:
        """The stored run for a spec (or raw signature), or ``None``."""
        signature = (
            spec_or_signature.signature
            if isinstance(spec_or_signature, ExperimentSpec)
            else str(spec_or_signature)
        )
        try:
            with self._connect() as conn:
                row = conn.execute(
                    f"{self._SELECT} WHERE signature = ?", (signature,)
                ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise CheckpointCorruptionError(
                f"results store is unreadable: {exc}", path=self.path
            ) from exc
        return self._row_to_record(row) if row is not None else None

    def payload(self, spec: ExperimentSpec) -> Optional[Dict[str, object]]:
        """Shorthand: the stored payload for a spec, or ``None``."""
        record = self.get(spec)
        return record.payload if record is not None else None

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.get(spec) is not None

    def signatures(self) -> List[str]:
        """Every recorded signature, in insertion (rowid) order."""
        with self._connect() as conn:
            rows = conn.execute("SELECT signature FROM runs ORDER BY rowid").fetchall()
        return [row[0] for row in rows]

    def missing(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentSpec]:
        """The subset of ``specs`` not yet recorded, preserving order."""
        present = set(self.signatures())
        return [spec for spec in specs if spec.signature not in present]

    def __iter__(self) -> Iterator[ExperimentRecord]:
        with self._connect() as conn:
            rows = conn.execute(f"{self._SELECT} ORDER BY rowid").fetchall()
        for row in rows:
            yield self._row_to_record(row)

    def load_all(self) -> List[ExperimentRecord]:
        """Every stored run, in insertion order."""
        return list(self)

    def __len__(self) -> int:
        with self._connect() as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(count)


__all__ = [
    "SCHEMA_VERSION",
    "ExperimentRecord",
    "ExperimentSpec",
    "ResultsStore",
    "dump_payload",
    "payload_checksum",
]
