"""The sweep orchestrator: diff a spec matrix against the store, run the rest.

The orchestrator owns the loop between the declarative matrices
(:mod:`repro.experiments.specs`) and the durable results store
(:mod:`repro.experiments.store`):

* :func:`plan` diffs a matrix against the store -- which signatures are
  already recorded, which still need a run;
* :func:`run_specs` executes exactly the missing specs on a thread pool with
  **parallel-ES-aware scheduling**: each spec occupies
  :func:`~repro.experiments.specs.spec_weight` worker slots (a Figure 9 arm
  running a multi-process enumeration holds its ``es_workers`` slots), so
  the sweep never stacks several sharded searches onto one machine;
* a run is recorded **only after its executor returns** -- a crashed or
  killed run leaves no row, so re-running the sweep re-executes it (the
  crash-safety contract the resume tests pin down).  Within a spec, the
  Figure 9 executor additionally persists the parallel engine's
  :class:`~repro.core.parallel_search.SearchProgress` under
  ``checkpoint_dir`` keyed by the spec signature, so even the partially
  enumerated shards of an interrupted arm survive;
* chaos hooks: a :class:`~repro.resilience.faults.FaultPlan` keyed by
  ``(spec index in the requested matrix, attempt)`` injects shard-style
  faults in front of the executor.  Transient injected faults are retried
  up to ``max_attempts``; a spec that keeps failing is reported, not
  recorded.

Every recorded run carries a :class:`~repro.obs.recorder.RunRecord` --
git revision, seed, executor wall time, attempt count, the process-wide
metrics snapshot, and the span trees the run produced when tracing is on.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ShardFailureError
from repro.experiments import specs as spec_registry
from repro.experiments.store import ExperimentSpec, ResultsStore
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.recorder import RunRecord, git_revision
from repro.resilience.faults import FaultInjector, FaultPlan, fire_shard_fault


@dataclass
class SweepReport:
    """What one :func:`run_specs` sweep did, spec by spec."""

    #: Every spec the sweep was asked about, in matrix order.
    requested: List[ExperimentSpec] = field(default_factory=list)
    #: Specs already in the store (skipped without running anything).
    skipped: List[ExperimentSpec] = field(default_factory=list)
    #: Specs executed and recorded by this sweep.
    executed: List[ExperimentSpec] = field(default_factory=list)
    #: ``(spec, error message)`` for specs whose executor kept failing.
    failed: List[Tuple[ExperimentSpec, str]] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def complete(self) -> bool:
        """True when every requested spec is now recorded."""
        return not self.failed

    def summary(self) -> str:
        """One human line: what ran, what was already there, what failed."""
        parts = [
            f"{len(self.requested)} specs",
            f"{len(self.skipped)} already stored",
            f"{len(self.executed)} executed",
        ]
        if self.failed:
            parts.append(f"{len(self.failed)} FAILED")
        parts.append(f"{self.elapsed_s:.1f}s")
        return ", ".join(parts)


def plan(
    specs: Sequence[ExperimentSpec], store: ResultsStore
) -> Tuple[List[ExperimentSpec], List[ExperimentSpec]]:
    """Diff a matrix against the store: ``(missing, present)`` in order."""
    present_signatures = set(store.signatures())
    missing = [spec for spec in specs if spec.signature not in present_signatures]
    present = [spec for spec in specs if spec.signature in present_signatures]
    return missing, present


def _run_one(
    spec: ExperimentSpec,
    index: int,
    checkpoint_dir: Optional[Path],
    injector: FaultInjector,
    max_attempts: int,
    allow_process_kill: bool,
) -> Tuple[Dict[str, object], int]:
    """Execute one spec, firing injected faults; returns (payload, attempts).

    Only injected :class:`~repro.exceptions.ShardFailureError` faults are
    retried -- a deterministic executor error would fail identically every
    attempt, so it propagates immediately.
    """
    last_error: Optional[ShardFailureError] = None
    for attempt in range(max(1, max_attempts)):
        fault = injector.shard_fault(index, attempt)
        try:
            if fault is not None:
                # A straggler delay returns and the run proceeds; exceptions
                # and (when allowed) hard process kills happen right here --
                # before the executor, so a killed attempt does no solver work
                # and, crucially, records nothing.
                fire_shard_fault(
                    fault, index, attempt, allow_process_kill=allow_process_kill
                )
            return spec_registry.execute(spec, checkpoint_dir=checkpoint_dir), attempt + 1
        except ShardFailureError as exc:
            last_error = exc
    assert last_error is not None
    raise last_error


def run_specs(
    specs: Sequence[ExperimentSpec],
    store: ResultsStore,
    workers: int = 1,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_attempts: int = 3,
    allow_process_kill: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Execute exactly the specs missing from the store; record successes.

    The scheduler admits specs head-of-queue (matrix order) whenever the
    spec's :func:`~repro.experiments.specs.spec_weight` fits into the free
    worker slots; a spec heavier than the pool runs alone.  Duplicate
    signatures within ``specs`` run once.
    """
    report = SweepReport(requested=list(specs))
    started = time.perf_counter()
    say = log if log is not None else (lambda message: None)
    checkpoints = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if checkpoints is not None:
        checkpoints.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(fault_plan)

    missing, present = plan(report.requested, store)
    report.skipped = present
    if present:
        say(f"store already holds {len(present)} of {len(report.requested)} specs")

    # Matrix index (fault-injection key) of every spec, first occurrence wins.
    index_of: Dict[str, int] = {}
    for position, spec in enumerate(report.requested):
        index_of.setdefault(spec.signature, position)
    queue = deque()
    enqueued = set()
    for spec in missing:
        if spec.signature not in enqueued:
            enqueued.add(spec.signature)
            queue.append(spec)

    capacity = max(1, int(workers))
    in_flight: Dict[object, Tuple[ExperimentSpec, int, float]] = {}
    used_slots = 0
    with ThreadPoolExecutor(max_workers=capacity) as pool:
        while queue or in_flight:
            while queue:
                head = queue[0]
                weight = min(spec_registry.spec_weight(head), capacity)
                if in_flight and used_slots + weight > capacity:
                    break
                queue.popleft()
                future = pool.submit(
                    _run_one,
                    head,
                    index_of[head.signature],
                    checkpoints,
                    injector,
                    max_attempts,
                    allow_process_kill,
                )
                in_flight[future] = (head, weight, time.perf_counter())
                used_slots += weight
                say(f"running {head.experiment} {head.signature[:12]} "
                    f"(weight {weight})")
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                spec, weight, spec_started = in_flight.pop(future)
                used_slots -= weight
                wall_s = time.perf_counter() - spec_started
                try:
                    payload, attempts = future.result()
                except Exception as exc:  # noqa: BLE001 -- reported, not raised
                    report.failed.append((spec, f"{type(exc).__name__}: {exc}"))
                    say(f"FAILED {spec.experiment} {spec.signature[:12]}: {exc}")
                    continue
                store.record(spec, payload, _provenance(spec, payload, wall_s, attempts))
                report.executed.append(spec)
                say(f"recorded {spec.experiment} {spec.signature[:12]} "
                    f"({wall_s:.1f}s, attempt {attempts})")

    report.elapsed_s = time.perf_counter() - started
    return report


def _provenance(
    spec: ExperimentSpec, payload: Dict[str, object], wall_s: float, attempts: int
) -> RunRecord:
    """The RunRecord-shaped provenance stored alongside a run's payload."""
    timing = payload.get("timing", {}) if isinstance(payload, dict) else {}
    spans = obs_trace.get_tracer().drain_roots()
    return RunRecord(
        run_id=f"exp-{spec.signature[:12]}",
        kind="experiment",
        solver=spec.solver,
        scenario=spec.scenario or None,
        git_rev=git_revision(),
        seed=spec.seed,
        created_unix_s=time.time(),
        elapsed_s=float(timing.get("elapsed_s", 0.0) or 0.0),
        wall_s=float(wall_s),
        stats={"attempts": int(attempts), "weight": spec_registry.spec_weight(spec)},
        metrics=obs_metrics.get_metrics().snapshot(),
        spans={"roots": spans} if spans else None,
    )


def run_figures(
    figures_wanted: Sequence[str],
    store: ResultsStore,
    scale: str = "paper",
    **kwargs,
) -> SweepReport:
    """Populate the store with everything the named figures need."""
    return run_specs(spec_registry.matrix(scale, figures_wanted), store, **kwargs)


def store_lookup(store: ResultsStore) -> Callable[[ExperimentSpec], Dict[str, object]]:
    """A figure-assembly lookup that reads payloads from the store.

    Raises :class:`KeyError` (carrying the spec) when a needed run is not
    recorded -- the ``figures`` CLI turns that into "run the sweep first".
    """

    def lookup(spec: ExperimentSpec) -> Dict[str, object]:
        payload = store.payload(spec)
        if payload is None:
            raise KeyError(
                f"store {store.path} has no run for spec "
                f"{spec.experiment}/{spec.signature[:12]} -- "
                "populate it with `python -m repro.experiments run`"
            )
        return payload

    return lookup


def direct_lookup(
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> Callable[[ExperimentSpec], Dict[str, object]]:
    """A figure-assembly lookup that executes specs directly (no store)."""

    def lookup(spec: ExperimentSpec) -> Dict[str, object]:
        return spec_registry.execute(spec, checkpoint_dir=checkpoint_dir)

    return lookup


__all__ = [
    "SweepReport",
    "direct_lookup",
    "plan",
    "run_figures",
    "run_specs",
    "store_lookup",
]
