"""Generic synthetic workload generator.

Used by tests, examples and ablation benchmarks that need workloads outside
the TPC-H / TPC-C shapes: a configurable mix of scans, keyed lookups, joins
and writes over an arbitrary catalog, with deterministic pseudo-random
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.query import JoinSpec, Query, TableAccess, WriteOp
from repro.exceptions import WorkloadError
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Knobs of the synthetic workload generator."""

    num_queries: int = 50
    scan_fraction: float = 0.4
    lookup_fraction: float = 0.3
    join_fraction: float = 0.2
    write_fraction: float = 0.1
    scan_selectivity: float = 0.5
    lookup_rows: float = 100.0
    join_rows_per_outer: float = 5.0
    write_rows: float = 50.0
    concurrency: int = 1
    seed: int = 42

    def __post_init__(self) -> None:
        total = (
            self.scan_fraction
            + self.lookup_fraction
            + self.join_fraction
            + self.write_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError("synthetic workload fractions must sum to 1.0")
        if self.num_queries < 1:
            raise WorkloadError("num_queries must be >= 1")


def generate(catalog: DatabaseCatalog,
             config: Optional[SyntheticWorkloadConfig] = None,
             name: str = "synthetic") -> Workload:
    """Generate a deterministic synthetic DSS workload over ``catalog``."""
    config = config or SyntheticWorkloadConfig()
    rng = np.random.default_rng(config.seed)
    tables = list(catalog.table_names)
    if not tables:
        raise WorkloadError("catalog has no tables to generate a workload over")

    kinds = rng.choice(
        ["scan", "lookup", "join", "write"],
        size=config.num_queries,
        p=[
            config.scan_fraction,
            config.lookup_fraction,
            config.join_fraction,
            config.write_fraction,
        ],
    )
    queries: List[Query] = []
    for position, kind in enumerate(kinds):
        table = tables[int(rng.integers(0, len(tables)))]
        primary = catalog.primary_index(table)
        index_name = primary.name if primary else None
        stats = catalog.table_stats(table)
        if kind == "scan":
            queries.append(
                Query(
                    name=f"syn_scan_{position}",
                    accesses=(TableAccess(table, selectivity=config.scan_selectivity),),
                    aggregate_rows=stats.row_count * config.scan_selectivity,
                )
            )
        elif kind == "lookup":
            selectivity = min(config.lookup_rows / max(stats.row_count, 1.0), 1.0)
            queries.append(
                Query(
                    name=f"syn_lookup_{position}",
                    accesses=(
                        TableAccess(table, selectivity=selectivity, index=index_name,
                                    key_lookup=True),
                    ),
                )
            )
        elif kind == "join":
            other = tables[int(rng.integers(0, len(tables)))]
            other_primary = catalog.primary_index(other)
            queries.append(
                Query(
                    name=f"syn_join_{position}",
                    accesses=(
                        TableAccess(table, selectivity=0.1),
                        TableAccess(other, selectivity=1.0,
                                    index=other_primary.name if other_primary else None),
                    ),
                    joins=(
                        JoinSpec(
                            inner_position=1,
                            rows_per_outer=config.join_rows_per_outer,
                            inner_index=other_primary.name if other_primary else None,
                        ),
                    ),
                    aggregate_rows=stats.row_count * 0.1 * config.join_rows_per_outer,
                )
            )
        else:  # write
            indexes = tuple(index.name for index in catalog.indexes_on(table))
            queries.append(
                Query(
                    name=f"syn_write_{position}",
                    writes=(
                        WriteOp(table, rows=config.write_rows, sequential=bool(rng.integers(0, 2)),
                                indexes=indexes),
                    ),
                )
            )
    return Workload(
        name=name,
        kind="dss",
        queries=tuple(queries),
        concurrency=config.concurrency,
        description=f"synthetic workload with {config.num_queries} queries",
    )
