"""TPC-C workload generator matching the paper's OLTP experiment setup."""

from __future__ import annotations

from repro.workloads.tpcc.transactions import STANDARD_MIX_WEIGHTS, standard_mix
from repro.workloads.workload import Workload


def oltp_workload(warehouses: int = 300, concurrency: int = 300,
                  duration_s: float = 3600.0) -> Workload:
    """The TPC-C workload: standard mix, 300 connections, 1-hour measurement.

    The measured transaction is New-Order, so the reported throughput metric
    (tpmC) counts only its share of the mix, matching the paper's Figure 8.
    """
    return Workload(
        name=f"tpcc-w{warehouses}",
        kind="oltp",
        transaction_mix=tuple(standard_mix(warehouses)),
        concurrency=concurrency,
        measured_transaction_fraction=STANDARD_MIX_WEIGHTS["new_order"],
        duration_s=duration_s,
        description=(
            f"TPC-C standard mix at {warehouses} warehouses, "
            f"{concurrency} connections, {duration_s / 60:.0f} minute measurement window"
        ),
    )
