"""TPC-C style schema and catalog builder.

The paper's OLTP experiments use a 30 GB TPC-C database at scale factor 300
(300 warehouses) populated through DBT-2.  This module defines the nine
TPC-C tables with per-warehouse cardinalities and representative row widths,
and registers the index set that appears in the paper's Table 3 layouts:
one primary-key index per table (named ``pk_<table>``) plus the two secondary
indexes ``i_customer`` (customer by last name) and ``i_orders`` (orders by
customer).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.schema import Column, ColumnType, Index, Table

#: Rows per warehouse for the scaling tables (TPC-C specification, clause 4.3).
ROWS_PER_WAREHOUSE: Dict[str, float] = {
    "warehouse": 1,
    "district": 10,
    "customer": 30_000,
    "history": 30_000,
    "orders": 30_000,
    "new_order": 9_000,
    "order_line": 300_000,
    "stock": 100_000,
}

#: The item table does not scale with warehouses.
ITEM_ROWS = 100_000

TPCC_TABLE_NAMES = (
    "warehouse",
    "district",
    "customer",
    "history",
    "new_order",
    "orders",
    "order_line",
    "item",
    "stock",
)


def _c(name: str, column_type: ColumnType, width: int | None = None) -> Column:
    return Column(name, column_type, width)


def _padded(name: str, key_columns: Tuple[Column, ...], payload_bytes: int) -> Table:
    """Build a table with explicit key columns plus a payload blob of given width."""
    columns = list(key_columns)
    if payload_bytes > 0:
        columns.append(Column("payload", ColumnType.VARCHAR, payload_bytes))
    return Table(name=name, columns=tuple(columns))


def _tables() -> Dict[str, Table]:
    """The nine TPC-C tables with representative row widths."""
    return {
        "warehouse": _padded("warehouse", (_c("w_id", ColumnType.INTEGER),), 85),
        "district": _padded(
            "district",
            (_c("d_w_id", ColumnType.INTEGER), _c("d_id", ColumnType.INTEGER)),
            90,
        ),
        "customer": _padded(
            "customer",
            (
                _c("c_w_id", ColumnType.INTEGER),
                _c("c_d_id", ColumnType.INTEGER),
                _c("c_id", ColumnType.INTEGER),
                _c("c_last", ColumnType.VARCHAR, 16),
            ),
            620,
        ),
        "history": _padded(
            "history",
            (_c("h_c_id", ColumnType.INTEGER), _c("h_date", ColumnType.DATE)),
            38,
        ),
        "new_order": _padded(
            "new_order",
            (
                _c("no_w_id", ColumnType.INTEGER),
                _c("no_d_id", ColumnType.INTEGER),
                _c("no_o_id", ColumnType.INTEGER),
            ),
            0,
        ),
        "orders": _padded(
            "orders",
            (
                _c("o_w_id", ColumnType.INTEGER),
                _c("o_d_id", ColumnType.INTEGER),
                _c("o_id", ColumnType.INTEGER),
                _c("o_c_id", ColumnType.INTEGER),
            ),
            12,
        ),
        "order_line": _padded(
            "order_line",
            (
                _c("ol_w_id", ColumnType.INTEGER),
                _c("ol_d_id", ColumnType.INTEGER),
                _c("ol_o_id", ColumnType.INTEGER),
                _c("ol_number", ColumnType.INTEGER),
            ),
            40,
        ),
        "item": _padded("item", (_c("i_id", ColumnType.INTEGER),), 78),
        "stock": _padded(
            "stock",
            (_c("s_w_id", ColumnType.INTEGER), _c("s_i_id", ColumnType.INTEGER)),
            298,
        ),
    }


#: Primary-key columns per table.
PRIMARY_KEYS: Dict[str, Tuple[str, ...]] = {
    "warehouse": ("w_id",),
    "district": ("d_w_id", "d_id"),
    "customer": ("c_w_id", "c_d_id", "c_id"),
    "history": ("h_c_id", "h_date"),
    "new_order": ("no_w_id", "no_d_id", "no_o_id"),
    "orders": ("o_w_id", "o_d_id", "o_id"),
    "order_line": ("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"),
    "item": ("i_id",),
    "stock": ("s_w_id", "s_i_id"),
}


def pk_name(table: str) -> str:
    """Name of a TPC-C table's primary-key index (paper Table 3 naming)."""
    return f"pk_{table}"


def table_row_count(table: str, warehouses: int) -> float:
    """Row count of a TPC-C table at the given warehouse count."""
    if table == "item":
        return ITEM_ROWS
    return ROWS_PER_WAREHOUSE[table] * warehouses


def build_catalog(warehouses: int = 300, name: str = "tpcc") -> DatabaseCatalog:
    """Build a TPC-C catalog for ``warehouses`` warehouses.

    The history table carries no index (matching the paper's Table 3, where
    ``history`` appears without a ``pk_history`` entry); every other table has
    its primary-key index, and ``customer`` / ``orders`` additionally carry
    the secondary indexes ``i_customer`` and ``i_orders``.
    """
    if warehouses < 1:
        raise ValueError("warehouse count must be >= 1")
    catalog = DatabaseCatalog(name=f"{name}-w{warehouses}")
    tables = _tables()
    for table_name in TPCC_TABLE_NAMES:
        catalog.add_table(tables[table_name], table_row_count(table_name, warehouses))
        if table_name == "history":
            continue
        catalog.add_index(
            Index(
                name=pk_name(table_name),
                table=table_name,
                columns=PRIMARY_KEYS[table_name],
                unique=True,
                primary=True,
            )
        )
    catalog.add_index(
        Index(
            name="i_customer",
            table="customer",
            columns=("c_w_id", "c_d_id", "c_last"),
        )
    )
    catalog.add_index(
        Index(
            name="i_orders",
            table="orders",
            columns=("o_w_id", "o_d_id", "o_c_id"),
        )
    )
    return catalog
