"""The five TPC-C transaction types as logical query specs.

Each transaction is expressed with the row-level footprint of the TPC-C
specification: keyed point reads (expressed as highly selective index
accesses with a ``repeat`` count) and keyed writes (inserts and in-place
updates, including the indexes they maintain).  The access pattern is almost
entirely random I/O, which reproduces the paper's observation that TPC-C
query plans do not change with the data layout -- only the time each I/O
takes does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dbms.query import Query, TableAccess, WriteOp
from repro.workloads.tpcc.schema import pk_name, table_row_count

#: The standard TPC-C transaction mix (weights sum to 1.0).
STANDARD_MIX_WEIGHTS: Dict[str, float] = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}

#: Average number of order lines per order (TPC-C clause 2.4.1.3).
LINES_PER_ORDER = 10.0


def _point(table: str, warehouses: int, repeat: float = 1.0,
           index: str | None = None, rows: float = 1.0,
           clustered: bool = False) -> TableAccess:
    """A keyed point/range read touching ``rows`` rows of ``table``."""
    row_count = table_row_count(table, warehouses)
    return TableAccess(
        table=table,
        selectivity=min(rows / max(row_count, 1.0), 1.0),
        index=index or pk_name(table),
        key_lookup=True,
        repeat=repeat,
        clustered=clustered,
    )


def new_order_transaction(warehouses: int) -> Query:
    """The New-Order transaction: the measured transaction of tpmC."""
    return Query(
        name="new_order",
        accesses=(
            _point("warehouse", warehouses),
            _point("district", warehouses),
            _point("customer", warehouses),
            _point("item", warehouses, repeat=LINES_PER_ORDER),
            _point("stock", warehouses, repeat=LINES_PER_ORDER),
        ),
        writes=(
            WriteOp("district", rows=1, sequential=False),
            WriteOp("stock", rows=LINES_PER_ORDER, sequential=False),
            WriteOp("orders", rows=1, sequential=True, indexes=(pk_name("orders"), "i_orders")),
            WriteOp("new_order", rows=1, sequential=True, indexes=(pk_name("new_order"),)),
            WriteOp("order_line", rows=LINES_PER_ORDER, sequential=True,
                    indexes=(pk_name("order_line"),)),
        ),
        description="Enter a new order: 10 item/stock lookups, order + line inserts",
    )


def payment_transaction(warehouses: int) -> Query:
    """The Payment transaction: balance updates plus a history insert."""
    return Query(
        name="payment",
        accesses=(
            _point("warehouse", warehouses),
            _point("district", warehouses),
            _point("customer", warehouses, index="i_customer", rows=3.0),
        ),
        writes=(
            WriteOp("warehouse", rows=1, sequential=False),
            WriteOp("district", rows=1, sequential=False),
            WriteOp("customer", rows=1, sequential=False),
            WriteOp("history", rows=1, sequential=True),
        ),
        description="Record a customer payment and append to history",
    )


def order_status_transaction(warehouses: int) -> Query:
    """The Order-Status transaction: read-only customer order lookup."""
    return Query(
        name="order_status",
        accesses=(
            _point("customer", warehouses, index="i_customer", rows=3.0),
            _point("orders", warehouses, index="i_orders"),
            _point("order_line", warehouses, rows=LINES_PER_ORDER, clustered=True),
        ),
        description="Query the status of a customer's most recent order",
    )


def delivery_transaction(warehouses: int) -> Query:
    """The Delivery transaction: process one new order per district."""
    districts = 10.0
    return Query(
        name="delivery",
        accesses=(
            _point("new_order", warehouses, repeat=districts),
            _point("orders", warehouses, repeat=districts),
            _point("order_line", warehouses, repeat=districts, rows=LINES_PER_ORDER,
                   clustered=True),
        ),
        writes=(
            WriteOp("new_order", rows=districts, sequential=False),
            WriteOp("orders", rows=districts, sequential=False),
            WriteOp("order_line", rows=districts * LINES_PER_ORDER, sequential=False,
                    clustered=True),
            WriteOp("customer", rows=districts, sequential=False),
        ),
        description="Deliver the oldest undelivered order of each district",
    )


def stock_level_transaction(warehouses: int) -> Query:
    """The Stock-Level transaction: read-only scan of recent order lines."""
    recent_lines = 200.0
    return Query(
        name="stock_level",
        accesses=(
            _point("district", warehouses),
            _point("order_line", warehouses, rows=recent_lines, clustered=True),
            _point("stock", warehouses, rows=recent_lines),
        ),
        description="Count low-stock items among recently sold items",
    )


def transaction_queries(warehouses: int = 300) -> Dict[str, Query]:
    """All five transaction types keyed by name."""
    return {
        "new_order": new_order_transaction(warehouses),
        "payment": payment_transaction(warehouses),
        "order_status": order_status_transaction(warehouses),
        "delivery": delivery_transaction(warehouses),
        "stock_level": stock_level_transaction(warehouses),
    }


def standard_mix(warehouses: int = 300) -> List[Tuple[Query, float]]:
    """The standard TPC-C transaction mix as ``(query, weight)`` pairs."""
    queries = transaction_queries(warehouses)
    return [(queries[name], weight) for name, weight in STANDARD_MIX_WEIGHTS.items()]
