"""TPC-C style OLTP schema, transactions and workload generator."""

from repro.workloads.tpcc.schema import build_catalog
from repro.workloads.tpcc.transactions import standard_mix, transaction_queries
from repro.workloads.tpcc.generator import oltp_workload

__all__ = ["build_catalog", "standard_mix", "transaction_queries", "oltp_workload"]
