"""Cross-kind workload composition: TPC-C transactions beside TPC-H queries.

The cross-kind drift study needs an OLTP phase and a DSS phase placing the
*same* object universe -- but the TPC-H and TPC-C schemas collide on table
names (both define ``customer`` and ``orders``).  This module provides the
renaming machinery that merges the two catalogs into one:

* :func:`prefixed_catalog` rebuilds a catalog with every table and index
  renamed under a prefix (statistics are re-derived from the original row
  counts, so sizes are bit-identical);
* :func:`prefixed_query` rewrites a query's accesses, joins and writes onto
  the renamed objects;
* :func:`merge_catalogs` unions catalogs into a fresh one (name collisions
  raise, as they would on a real database);
* :func:`tpch_tpcc_workloads` wires it all: one merged catalog carrying the
  TPC-H tables plus the ``tpcc_``-prefixed TPC-C tables, the TPC-C
  transaction mix rewritten onto the prefixed objects, and the TPC-H query
  stream untouched -- ready to crossfade as the two phases of a
  :class:`~repro.online.drift.DriftingWorkloadGenerator` with
  ``cross_kind=True``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Set, Tuple

from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.query import Query
from repro.dbms.schema import Index, Table
from repro.workloads import tpcc, tpch
from repro.workloads.workload import Workload


def prefixed_catalog(catalog: DatabaseCatalog, prefix: str,
                     name: Optional[str] = None) -> DatabaseCatalog:
    """Rebuild a catalog with every table and index renamed under ``prefix``.

    Statistics are re-derived from the original row counts over unchanged
    column definitions, so every object's size (and therefore every layout
    cost downstream) matches the unprefixed catalog exactly.
    """
    renamed = DatabaseCatalog(name=name or f"{prefix}{catalog.name}")
    for table_name in catalog.table_names:
        table = catalog.table(table_name)
        renamed.add_table(
            Table(name=f"{prefix}{table.name}", columns=table.columns),
            catalog.table_stats(table_name).row_count,
        )
    for index_name in catalog.index_names:
        index = catalog.index(index_name)
        renamed.add_index(
            Index(
                name=f"{prefix}{index.name}",
                table=f"{prefix}{index.table}",
                columns=index.columns,
                unique=index.unique,
                primary=index.primary,
            )
        )
    return renamed


def prefixed_query(query: Query, prefix: str, known: Set[str]) -> Query:
    """Rewrite a query onto prefixed object names.

    Only names in ``known`` (the renamed catalog's original tables and
    indexes) are prefixed, so queries that also touch shared objects keep
    those references intact.
    """

    def rename(object_name):
        if object_name is None:
            return None
        return f"{prefix}{object_name}" if object_name in known else object_name

    return replace(
        query,
        accesses=tuple(
            replace(access, table=rename(access.table), index=rename(access.index))
            for access in query.accesses
        ),
        joins=tuple(
            replace(join, inner_index=rename(join.inner_index))
            for join in query.joins
        ),
        writes=tuple(
            replace(
                write,
                table=rename(write.table),
                indexes=tuple(rename(index_name) for index_name in write.indexes),
            )
            for write in query.writes
        ),
    )


def merge_catalogs(name: str, catalogs: Iterable[DatabaseCatalog]) -> DatabaseCatalog:
    """Union several catalogs into a fresh one (collisions raise).

    Tables and indexes are re-registered in catalog order; statistics are
    re-derived from the original row counts, which reproduces them exactly.
    """
    merged = DatabaseCatalog(name=name)
    for catalog in catalogs:
        for table_name in catalog.table_names:
            merged.add_table(
                catalog.table(table_name), catalog.table_stats(table_name).row_count
            )
        for index_name in catalog.index_names:
            merged.add_index(catalog.index(index_name))
    return merged


def tpch_tpcc_workloads(
    scale_factor: float = 2.0,
    warehouses: int = 30,
    oltp_concurrency: int = 100,
    olap_repetitions: int = 1,
    tpcc_prefix: str = "tpcc_",
) -> Tuple[DatabaseCatalog, Workload, Workload]:
    """One merged TPC-H + TPC-C universe with its two phase workloads.

    Returns ``(catalog, oltp, dss)``: the merged catalog (TPC-H tables
    unprefixed, TPC-C tables under ``tpcc_prefix``), the TPC-C standard mix
    rewritten onto the prefixed objects (throughput metric, closed-loop
    ``oltp_concurrency``), and the original TPC-H query stream.  The two
    workloads reference disjoint object sets of the same catalog, which is
    precisely what an OLTP->DSS crossfade drifts between: the I/O share
    moves from the transactional tables to the analytical ones.
    """
    tpch_catalog = tpch.build_catalog(scale_factor)
    tpcc_catalog = tpcc.build_catalog(warehouses)
    known = set(tpcc_catalog.table_names) | set(tpcc_catalog.index_names)
    merged = merge_catalogs(
        f"tpch-sf{scale_factor:g}+tpcc-w{warehouses}",
        [tpch_catalog, prefixed_catalog(tpcc_catalog, tpcc_prefix)],
    )
    oltp = tpcc.oltp_workload(warehouses, concurrency=oltp_concurrency)
    oltp = Workload(
        name=f"{tpcc_prefix}{oltp.name}",
        kind="oltp",
        transaction_mix=tuple(
            (prefixed_query(query, tpcc_prefix, known), weight)
            for query, weight in oltp.transaction_mix
        ),
        concurrency=oltp.concurrency,
        measured_transaction_fraction=oltp.measured_transaction_fraction,
        duration_s=oltp.duration_s,
        description=oltp.description,
    )
    dss = tpch.original_workload(scale_factor, repetitions=olap_repetitions)
    return merged, oltp, dss
