"""TPC-H style decision-support schema, queries and workload generators."""

from repro.workloads.tpch.schema import build_catalog, table_row_count
from repro.workloads.tpch.queries import original_queries
from repro.workloads.tpch.modified import modified_queries
from repro.workloads.tpch.generator import (
    es_subset_workload,
    modified_workload,
    original_workload,
)

__all__ = [
    "build_catalog",
    "table_row_count",
    "original_queries",
    "modified_queries",
    "original_workload",
    "modified_workload",
    "es_subset_workload",
]
