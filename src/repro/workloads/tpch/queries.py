"""The 22 TPC-H query templates as structured logical query specs.

Each builder encodes the access/join structure and approximate predicate
selectivities of the corresponding TPC-H template.  Two properties matter for
reproducing the paper (and both are preserved):

* the *original* workload is dominated by sequential reads -- most templates
  filter on non-key columns, so their driver tables are sequentially scanned
  and only joins whose key matches a primary-key index can become indexed
  nested-loop joins (the paper observes only ~11 % INLJ on DOT layouts);
* join cardinalities follow the TPC-H ratios (four lineitems per order, ten
  orders per customer, four partsupp entries per part, ...), so moving
  ``lineitem``/``orders`` between storage classes shifts the bulk of the I/O.

Selectivities are the commonly cited values for the default substitution
parameters; absolute precision is unnecessary because every experiment
compares layouts under the *same* workload model.
"""

from __future__ import annotations

from typing import Dict

from repro.dbms.query import JoinSpec, Query, TableAccess, WriteOp
from repro.workloads.tpch.schema import pkey_name, table_row_count

# Child-per-parent join ratios implied by the TPC-H schema (scale invariant).
LINEITEMS_PER_ORDER = 4.0
ORDERS_PER_CUSTOMER = 10.0
PARTSUPP_PER_PART = 4.0
LINEITEMS_PER_PART = 30.0
LINEITEMS_PER_SUPPLIER = 600.0
PARTSUPP_PER_SUPPLIER = 80.0
NATIONS_PER_REGION = 5.0


def _rows(table: str, scale_factor: float) -> float:
    return table_row_count(table, scale_factor)


def original_queries(scale_factor: float = 20.0) -> Dict[str, Query]:
    """Build the 22 original TPC-H query templates for a scale factor."""
    sf = scale_factor
    customers_per_nation = _rows("customer", sf) / 25.0
    suppliers_per_nation = _rows("supplier", sf) / 25.0
    queries: Dict[str, Query] = {}

    # Q1: pricing summary report -- one big filtered scan of lineitem.
    queries["q1"] = Query(
        name="q1",
        accesses=(TableAccess("lineitem", selectivity=0.97),),
        aggregate_rows=_rows("lineitem", sf) * 0.97,
        sort_rows=4,
        description="Pricing summary report: near-full lineitem scan with aggregation",
    )

    # Q2: minimum cost supplier -- small part slice, correlated partsupp lookup.
    q2_parts = _rows("part", sf) * 0.004
    queries["q2"] = Query(
        name="q2",
        accesses=(
            TableAccess("part", selectivity=0.004),
            TableAccess("partsupp", selectivity=1.0, index=pkey_name("partsupp")),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
            TableAccess("nation", selectivity=1.0, index=pkey_name("nation")),
            TableAccess("region", selectivity=0.2),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=PARTSUPP_PER_PART,
                     inner_index=pkey_name("partsupp")),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("nation")),
            JoinSpec(inner_position=4, rows_per_outer=0.2),
        ),
        sort_rows=q2_parts,
        aggregate_rows=q2_parts * PARTSUPP_PER_PART,
        description="Minimum cost supplier over a small part slice",
    )

    # Q3: shipping priority -- segment customers, recent orders, open lineitems.
    q3_orders = _rows("customer", sf) * 0.2 * ORDERS_PER_CUSTOMER * 0.48
    queries["q3"] = Query(
        name="q3",
        accesses=(
            TableAccess("customer", selectivity=0.2),
            TableAccess("orders", selectivity=0.48),
            TableAccess("lineitem", selectivity=0.54, index=pkey_name("lineitem")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=ORDERS_PER_CUSTOMER * 0.48),
            JoinSpec(inner_position=2, rows_per_outer=LINEITEMS_PER_ORDER * 0.54,
                     inner_index=pkey_name("lineitem")),
        ),
        sort_rows=q3_orders,
        aggregate_rows=q3_orders * LINEITEMS_PER_ORDER * 0.54,
        description="Shipping priority: customer/orders/lineitem join",
    )

    # Q4: order priority checking -- quarter of orders, lineitem existence check.
    q4_orders = _rows("orders", sf) * 0.038
    queries["q4"] = Query(
        name="q4",
        accesses=(
            TableAccess("orders", selectivity=0.038),
            TableAccess("lineitem", selectivity=0.63, index=pkey_name("lineitem")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=1.0, inner_index=pkey_name("lineitem")),
        ),
        aggregate_rows=q4_orders,
        sort_rows=5,
        description="Order priority checking with lineitem semi-join",
    )

    # Q5: local supplier volume -- region/nation/customer/orders/lineitem/supplier.
    q5_customers = NATIONS_PER_REGION * customers_per_nation
    q5_orders = q5_customers * ORDERS_PER_CUSTOMER * 0.15
    queries["q5"] = Query(
        name="q5",
        accesses=(
            TableAccess("region", selectivity=0.2),
            TableAccess("nation", selectivity=1.0),
            TableAccess("customer", selectivity=1.0),
            TableAccess("orders", selectivity=0.15),
            TableAccess("lineitem", selectivity=1.0, index=pkey_name("lineitem")),
            TableAccess("supplier", selectivity=1.0),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=NATIONS_PER_REGION),
            JoinSpec(inner_position=2, rows_per_outer=customers_per_nation),
            JoinSpec(inner_position=3, rows_per_outer=ORDERS_PER_CUSTOMER * 0.15),
            JoinSpec(inner_position=4, rows_per_outer=LINEITEMS_PER_ORDER,
                     inner_index=pkey_name("lineitem")),
            JoinSpec(inner_position=5, rows_per_outer=0.04),
        ),
        aggregate_rows=q5_orders * LINEITEMS_PER_ORDER,
        sort_rows=5,
        description="Local supplier volume within one region and year",
    )

    # Q6: forecasting revenue change -- highly selective lineitem scan, no index.
    queries["q6"] = Query(
        name="q6",
        accesses=(TableAccess("lineitem", selectivity=0.019),),
        aggregate_rows=_rows("lineitem", sf) * 0.019,
        description="Forecasting revenue change: filtered lineitem scan",
    )

    # Q7: volume shipping between two nations.
    q7_suppliers = 2.0 * suppliers_per_nation
    q7_lineitems = q7_suppliers * LINEITEMS_PER_SUPPLIER * 0.3
    queries["q7"] = Query(
        name="q7",
        accesses=(
            TableAccess("nation", selectivity=0.08),
            TableAccess("supplier", selectivity=1.0),
            TableAccess("lineitem", selectivity=0.3),
            TableAccess("orders", selectivity=1.0, index=pkey_name("orders")),
            TableAccess("customer", selectivity=0.08, index=pkey_name("customer")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=suppliers_per_nation),
            JoinSpec(inner_position=2, rows_per_outer=LINEITEMS_PER_SUPPLIER * 0.3),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("orders")),
            JoinSpec(inner_position=4, rows_per_outer=0.08, inner_index=pkey_name("customer")),
        ),
        aggregate_rows=q7_lineitems,
        sort_rows=8,
        description="Volume shipping between two nations",
    )

    # Q8: national market share -- narrow part slice drives the join.
    q8_parts = _rows("part", sf) * 0.0013
    q8_lineitems = q8_parts * LINEITEMS_PER_PART
    queries["q8"] = Query(
        name="q8",
        accesses=(
            TableAccess("part", selectivity=0.0013),
            TableAccess("lineitem", selectivity=1.0),
            TableAccess("orders", selectivity=0.3, index=pkey_name("orders")),
            TableAccess("customer", selectivity=1.0, index=pkey_name("customer")),
            TableAccess("nation", selectivity=0.2),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_PART),
            JoinSpec(inner_position=2, rows_per_outer=0.3, inner_index=pkey_name("orders")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("customer")),
            JoinSpec(inner_position=4, rows_per_outer=0.2),
            JoinSpec(inner_position=5, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
        ),
        aggregate_rows=q8_lineitems,
        sort_rows=2,
        description="National market share for a part type",
    )

    # Q9: product type profit measure -- large part slice, joins most of the schema.
    q9_parts = _rows("part", sf) * 0.055
    q9_lineitems = q9_parts * LINEITEMS_PER_PART
    queries["q9"] = Query(
        name="q9",
        accesses=(
            TableAccess("part", selectivity=0.055),
            TableAccess("lineitem", selectivity=1.0),
            TableAccess("partsupp", selectivity=1.0, index=pkey_name("partsupp")),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
            TableAccess("orders", selectivity=1.0, index=pkey_name("orders")),
            TableAccess("nation", selectivity=1.0, index=pkey_name("nation")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_PART),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("partsupp")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
            JoinSpec(inner_position=4, rows_per_outer=1.0, inner_index=pkey_name("orders")),
            JoinSpec(inner_position=5, rows_per_outer=1.0, inner_index=pkey_name("nation")),
        ),
        aggregate_rows=q9_lineitems,
        sort_rows=175,
        description="Product type profit measure across the whole schema",
    )

    # Q10: returned item reporting -- one quarter of orders, returned lineitems.
    q10_orders = _rows("orders", sf) * 0.03
    queries["q10"] = Query(
        name="q10",
        accesses=(
            TableAccess("orders", selectivity=0.03),
            TableAccess("lineitem", selectivity=0.25, index=pkey_name("lineitem")),
            TableAccess("customer", selectivity=1.0, index=pkey_name("customer")),
            TableAccess("nation", selectivity=1.0, index=pkey_name("nation")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_ORDER * 0.25,
                     inner_index=pkey_name("lineitem")),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("customer")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("nation")),
        ),
        aggregate_rows=q10_orders * LINEITEMS_PER_ORDER * 0.25,
        sort_rows=q10_orders,
        description="Returned item reporting by customer",
    )

    # Q11: important stock identification over one nation's suppliers.
    q11_suppliers = suppliers_per_nation
    q11_partsupp = q11_suppliers * PARTSUPP_PER_SUPPLIER
    queries["q11"] = Query(
        name="q11",
        accesses=(
            TableAccess("nation", selectivity=0.04),
            TableAccess("supplier", selectivity=1.0),
            TableAccess("partsupp", selectivity=1.0),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=q11_suppliers),
            JoinSpec(inner_position=2, rows_per_outer=PARTSUPP_PER_SUPPLIER),
        ),
        aggregate_rows=q11_partsupp,
        sort_rows=q11_partsupp * 0.05,
        description="Important stock identification for one nation",
    )

    # Q12: shipping modes and order priority.
    q12_lineitems = _rows("lineitem", sf) * 0.04
    queries["q12"] = Query(
        name="q12",
        accesses=(
            TableAccess("lineitem", selectivity=0.04),
            TableAccess("orders", selectivity=1.0, index=pkey_name("orders")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=1.0, inner_index=pkey_name("orders")),
        ),
        aggregate_rows=q12_lineitems,
        sort_rows=2,
        description="Shipping modes and order priority",
    )

    # Q13: customer distribution -- full customer/orders join.
    queries["q13"] = Query(
        name="q13",
        accesses=(
            TableAccess("customer", selectivity=1.0),
            TableAccess("orders", selectivity=0.98),
        ),
        joins=(JoinSpec(inner_position=1, rows_per_outer=ORDERS_PER_CUSTOMER * 0.98),),
        aggregate_rows=_rows("orders", sf) * 0.98,
        sort_rows=45,
        description="Customer distribution: full customer x orders join",
    )

    # Q14: promotion effect -- one month of lineitems, part lookups.
    q14_lineitems = _rows("lineitem", sf) * 0.0125
    queries["q14"] = Query(
        name="q14",
        accesses=(
            TableAccess("lineitem", selectivity=0.0125),
            TableAccess("part", selectivity=1.0, index=pkey_name("part")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=1.0, inner_index=pkey_name("part")),
        ),
        aggregate_rows=q14_lineitems,
        description="Promotion effect over one month of lineitems",
    )

    # Q15: top supplier -- three months of lineitems grouped by supplier.
    q15_lineitems = _rows("lineitem", sf) * 0.04
    queries["q15"] = Query(
        name="q15",
        accesses=(
            TableAccess("lineitem", selectivity=0.04),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
        ),
        aggregate_rows=q15_lineitems,
        sort_rows=_rows("supplier", sf),
        description="Top supplier over a three month window",
    )

    # Q16: parts/supplier relationship -- partsupp scan with part filter.
    queries["q16"] = Query(
        name="q16",
        accesses=(
            TableAccess("partsupp", selectivity=1.0),
            TableAccess("part", selectivity=0.8, index=pkey_name("part")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=0.8, inner_index=pkey_name("part")),
        ),
        aggregate_rows=_rows("partsupp", sf) * 0.8,
        sort_rows=18_000,
        description="Parts/supplier relationship counts",
    )

    # Q17: small-quantity-order revenue -- tiny part slice, correlated lineitem avg.
    q17_parts = _rows("part", sf) * 0.001
    queries["q17"] = Query(
        name="q17",
        accesses=(
            TableAccess("part", selectivity=0.001),
            TableAccess("lineitem", selectivity=1.0),
        ),
        joins=(JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_PART),),
        aggregate_rows=q17_parts * LINEITEMS_PER_PART,
        description="Small-quantity-order revenue with correlated average",
    )

    # Q18: large volume customers -- lineitem aggregation then order/customer lookups.
    q18_orders = _rows("orders", sf) * 0.0001
    queries["q18"] = Query(
        name="q18",
        accesses=(
            TableAccess("lineitem", selectivity=1.0),
            TableAccess("orders", selectivity=1.0, index=pkey_name("orders")),
            TableAccess("customer", selectivity=1.0, index=pkey_name("customer")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=0.0001, inner_index=pkey_name("orders")),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("customer")),
        ),
        aggregate_rows=_rows("lineitem", sf),
        sort_rows=q18_orders * LINEITEMS_PER_ORDER,
        description="Large volume customers via lineitem group-by",
    )

    # Q19: discounted revenue -- lineitem with part filters on brand/container.
    q19_lineitems = _rows("lineitem", sf) * 0.002
    queries["q19"] = Query(
        name="q19",
        accesses=(
            TableAccess("lineitem", selectivity=0.002),
            TableAccess("part", selectivity=1.0, index=pkey_name("part")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=1.0, inner_index=pkey_name("part")),
        ),
        aggregate_rows=q19_lineitems,
        description="Discounted revenue for selected brands/containers",
    )

    # Q20: potential part promotion -- forest parts, partsupp, availability check.
    q20_parts = _rows("part", sf) * 0.01
    queries["q20"] = Query(
        name="q20",
        accesses=(
            TableAccess("part", selectivity=0.01),
            TableAccess("partsupp", selectivity=1.0, index=pkey_name("partsupp")),
            TableAccess("lineitem", selectivity=0.01),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=PARTSUPP_PER_PART,
                     inner_index=pkey_name("partsupp")),
            JoinSpec(inner_position=2, rows_per_outer=LINEITEMS_PER_PART * 0.01),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
        ),
        aggregate_rows=q20_parts * PARTSUPP_PER_PART,
        sort_rows=q20_parts,
        description="Potential part promotion (forest parts)",
    )

    # Q21: suppliers who kept orders waiting -- one nation, late lineitems.
    q21_suppliers = suppliers_per_nation * 0.04 * 25.0
    q21_lineitems = q21_suppliers * LINEITEMS_PER_SUPPLIER * 0.5
    queries["q21"] = Query(
        name="q21",
        accesses=(
            TableAccess("supplier", selectivity=0.04),
            TableAccess("lineitem", selectivity=0.5),
            TableAccess("orders", selectivity=0.49, index=pkey_name("orders")),
            TableAccess("lineitem", selectivity=1.0, index=pkey_name("lineitem")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_SUPPLIER * 0.5),
            JoinSpec(inner_position=2, rows_per_outer=0.49, inner_index=pkey_name("orders")),
            JoinSpec(inner_position=3, rows_per_outer=LINEITEMS_PER_ORDER,
                     inner_index=pkey_name("lineitem")),
        ),
        aggregate_rows=q21_lineitems,
        sort_rows=q21_suppliers,
        description="Suppliers who kept orders waiting",
    )

    # Q22: global sales opportunity -- customer scan with orders anti-join.
    q22_customers = _rows("customer", sf) * 0.25
    queries["q22"] = Query(
        name="q22",
        accesses=(
            TableAccess("customer", selectivity=0.25),
            TableAccess("orders", selectivity=1.0),
        ),
        joins=(JoinSpec(inner_position=1, rows_per_outer=0.35),),
        aggregate_rows=q22_customers,
        sort_rows=7,
        description="Global sales opportunity (customers without orders)",
    )

    return queries


#: The eleven-template subset the paper uses for the exhaustive-search
#: comparison (Section 4.4.3).
ES_SUBSET_TEMPLATES = ("q1", "q3", "q4", "q6", "q12", "q13", "q14", "q17", "q18", "q19", "q22")

#: The objects involved in the ES comparison: lineitem, orders, customer, part
#: and their primary-key indexes (eight objects).
ES_SUBSET_OBJECTS = (
    "lineitem",
    "lineitem_pkey",
    "orders",
    "orders_pkey",
    "customer",
    "customer_pkey",
    "part",
    "part_pkey",
)
