"""The modified ("Operational Data Store") TPC-H workload of Section 4.4.2.

Following Canim et al. [10], the paper modifies five TPC-H templates
(Q2, Q5, Q9, Q11 and Q17) by adding extra predicates on the part, order
and/or supplier keys so that far fewer rows qualify.  Because those extra
predicates sit on *indexed key columns*, the optimizer can drive the queries
through primary-key index scans and indexed nested-loop joins, turning the
workload from sequential-read dominated into a mix of random and sequential
reads -- which is exactly what makes the high-end SSD attractive and lets the
paper demonstrate the plan/layout interaction (50 % INLJ at relative SLA 0.5
versus 11 % for the original workload).
"""

from __future__ import annotations

from typing import Dict

from repro.dbms.query import JoinSpec, Query, TableAccess
from repro.workloads.tpch.queries import (
    LINEITEMS_PER_PART,
    ORDERS_PER_CUSTOMER,
    PARTSUPP_PER_PART,
    PARTSUPP_PER_SUPPLIER,
)
from repro.workloads.tpch.schema import pkey_name, table_row_count

#: The templates the modified workload is built from.
MODIFIED_TEMPLATES = ("q2", "q5", "q9", "q11", "q17")


def modified_queries(scale_factor: float = 20.0,
                     key_range_rows: float = 2000.0) -> Dict[str, Query]:
    """Build the five modified (selective) TPC-H templates.

    ``key_range_rows`` is the approximate number of driver-table rows the
    added key-range predicate retains; the default keeps the workload random-
    I/O heavy without making it trivial.
    """
    sf = scale_factor
    part_rows = table_row_count("part", sf)
    orders_rows = table_row_count("orders", sf)
    supplier_rows = table_row_count("supplier", sf)
    customer_rows = table_row_count("customer", sf)

    part_sel = min(key_range_rows / part_rows, 1.0)
    orders_sel = min(key_range_rows / orders_rows, 1.0)
    supplier_sel = min(key_range_rows / supplier_rows, 1.0)
    customer_sel = min(key_range_rows * 2 / customer_rows, 1.0)

    queries: Dict[str, Query] = {}

    # Modified Q2: part key range drives indexed partsupp/supplier lookups.
    queries["q2m"] = Query(
        name="q2m",
        accesses=(
            TableAccess("part", selectivity=part_sel, index=pkey_name("part"), key_lookup=True),
            TableAccess("partsupp", selectivity=1.0, index=pkey_name("partsupp")),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
            TableAccess("nation", selectivity=1.0, index=pkey_name("nation")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=PARTSUPP_PER_PART,
                     inner_index=pkey_name("partsupp")),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("nation")),
        ),
        sort_rows=part_rows * part_sel,
        aggregate_rows=part_rows * part_sel * PARTSUPP_PER_PART,
        description="Modified Q2: part-key range with indexed supplier lookups",
    )

    # Modified Q5: order key range drives lineitem / customer lookups.
    queries["q5m"] = Query(
        name="q5m",
        accesses=(
            TableAccess("orders", selectivity=orders_sel, index=pkey_name("orders"),
                        key_lookup=True),
            TableAccess("lineitem", selectivity=1.0, index=pkey_name("lineitem")),
            TableAccess("customer", selectivity=1.0, index=pkey_name("customer")),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
            TableAccess("nation", selectivity=1.0, index=pkey_name("nation")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=4.0, inner_index=pkey_name("lineitem")),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("customer")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
            JoinSpec(inner_position=4, rows_per_outer=1.0, inner_index=pkey_name("nation")),
        ),
        aggregate_rows=orders_rows * orders_sel * 4.0,
        sort_rows=5,
        description="Modified Q5: order-key range with indexed joins",
    )

    # Modified Q9: narrow part-key range, whole join chain via indexes.
    queries["q9m"] = Query(
        name="q9m",
        accesses=(
            TableAccess("part", selectivity=part_sel, index=pkey_name("part"), key_lookup=True),
            TableAccess("lineitem", selectivity=1.0),
            TableAccess("partsupp", selectivity=1.0, index=pkey_name("partsupp")),
            TableAccess("supplier", selectivity=1.0, index=pkey_name("supplier")),
            TableAccess("orders", selectivity=1.0, index=pkey_name("orders")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_PART),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("partsupp")),
            JoinSpec(inner_position=3, rows_per_outer=1.0, inner_index=pkey_name("supplier")),
            JoinSpec(inner_position=4, rows_per_outer=1.0, inner_index=pkey_name("orders")),
        ),
        aggregate_rows=part_rows * part_sel * LINEITEMS_PER_PART,
        sort_rows=175,
        description="Modified Q9: part-key range, index-driven profit measure",
    )

    # Modified Q11: supplier key range drives partsupp lookups.
    queries["q11m"] = Query(
        name="q11m",
        accesses=(
            TableAccess("supplier", selectivity=supplier_sel, index=pkey_name("supplier"),
                        key_lookup=True),
            TableAccess("partsupp", selectivity=1.0, index=pkey_name("partsupp")),
            TableAccess("nation", selectivity=1.0, index=pkey_name("nation")),
        ),
        joins=(
            JoinSpec(inner_position=1, rows_per_outer=PARTSUPP_PER_SUPPLIER),
            JoinSpec(inner_position=2, rows_per_outer=1.0, inner_index=pkey_name("nation")),
        ),
        aggregate_rows=supplier_rows * supplier_sel * PARTSUPP_PER_SUPPLIER,
        sort_rows=supplier_rows * supplier_sel,
        description="Modified Q11: supplier-key range over partsupp",
    )

    # Modified Q17: tiny part-key range with correlated lineitem lookups.
    queries["q17m"] = Query(
        name="q17m",
        accesses=(
            TableAccess("part", selectivity=part_sel * 0.5, index=pkey_name("part"),
                        key_lookup=True),
            TableAccess("lineitem", selectivity=1.0),
        ),
        joins=(JoinSpec(inner_position=1, rows_per_outer=LINEITEMS_PER_PART),),
        aggregate_rows=part_rows * part_sel * 0.5 * LINEITEMS_PER_PART,
        description="Modified Q17: part-key range with correlated lineitem average",
    )

    return queries
