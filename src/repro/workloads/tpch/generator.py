"""TPC-H workload generators matching the paper's three DSS workloads.

* :func:`original_workload` -- 66 queries: each of the 22 templates three
  times, executed sequentially (Section 4.4, following Ozmen et al. [22]).
* :func:`modified_workload` -- 100 queries: the five modified templates
  twenty times each (Section 4.4.2, following Canim et al. [10]).
* :func:`es_subset_workload` -- 33 queries from the 11-template subset used
  for the exhaustive-search comparison (Section 4.4.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workloads.tpch.modified import modified_queries
from repro.workloads.tpch.queries import ES_SUBSET_TEMPLATES, original_queries
from repro.workloads.workload import Workload


def original_workload(scale_factor: float = 20.0, repetitions: int = 3) -> Workload:
    """The original TPC-H workload: every template repeated ``repetitions`` times."""
    templates = original_queries(scale_factor)
    stream = []
    for _ in range(repetitions):
        stream.extend(templates[name] for name in sorted(templates, key=_template_order))
    return Workload(
        name=f"tpch-original-sf{scale_factor:g}",
        kind="dss",
        queries=tuple(stream),
        concurrency=1,
        description=(
            f"{len(stream)} queries from the 22 original TPC-H templates "
            f"({repetitions} repetitions), sequential-read dominated"
        ),
    )


def modified_workload(scale_factor: float = 20.0, repetitions: int = 20,
                      key_range_rows: float = 2000.0) -> Workload:
    """The modified (ODS-style) TPC-H workload: 5 selective templates repeated."""
    templates = modified_queries(scale_factor, key_range_rows=key_range_rows)
    stream = []
    for _ in range(repetitions):
        stream.extend(templates[name] for name in sorted(templates))
    return Workload(
        name=f"tpch-modified-sf{scale_factor:g}",
        kind="dss",
        queries=tuple(stream),
        concurrency=1,
        description=(
            f"{len(stream)} queries from the 5 modified TPC-H templates "
            f"({repetitions} repetitions), mixed random/sequential I/O"
        ),
    )


def es_subset_workload(scale_factor: float = 20.0, repetitions: int = 3,
                       templates: Optional[Sequence[str]] = None) -> Workload:
    """The reduced workload used for the exhaustive-search comparison."""
    wanted = tuple(templates) if templates is not None else ES_SUBSET_TEMPLATES
    all_templates = original_queries(scale_factor)
    stream = []
    for _ in range(repetitions):
        stream.extend(all_templates[name] for name in wanted)
    return Workload(
        name=f"tpch-es-subset-sf{scale_factor:g}",
        kind="dss",
        queries=tuple(stream),
        concurrency=1,
        description=(
            f"{len(stream)} queries from {len(wanted)} TPC-H templates used in the "
            "exhaustive-search comparison"
        ),
    )


def _template_order(name: str) -> int:
    """Sort q1..q22 numerically rather than lexicographically."""
    return int(name.lstrip("q"))
