"""TPC-H style schema and catalog builder.

The paper's DSS experiments use a 30 GB TPC-H database at scale factor 20,
with every table carrying a primary-key index (the ``*_pkey`` objects of
Figure 4) and the heaps deliberately shuffled so they are not clustered on
their keys.  This module defines the eight tables with realistic column
widths and per-scale-factor row counts, and builds a
:class:`~repro.dbms.catalog.DatabaseCatalog` for any scale factor.
"""

from __future__ import annotations

from typing import Dict

from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.schema import Column, ColumnType, Index, Table

#: Base row counts at scale factor 1 (TPC-H specification, Section 4.2.5).
ROWS_AT_SF1: Dict[str, float] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose cardinality does not grow with the scale factor.
FIXED_SIZE_TABLES = ("region", "nation")

TPCH_TABLE_NAMES = (
    "lineitem",
    "orders",
    "partsupp",
    "part",
    "customer",
    "supplier",
    "nation",
    "region",
)


def table_row_count(table: str, scale_factor: float) -> float:
    """Row count of a TPC-H table at the given scale factor."""
    base = ROWS_AT_SF1[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return base * scale_factor


def _c(name: str, column_type: ColumnType, width: int | None = None) -> Column:
    return Column(name, column_type, width)


def _tables() -> Dict[str, Table]:
    """The eight TPC-H tables with representative column widths."""
    return {
        "region": Table(
            "region",
            (
                _c("r_regionkey", ColumnType.INTEGER),
                _c("r_name", ColumnType.CHAR, 25),
                _c("r_comment", ColumnType.VARCHAR, 80),
            ),
        ),
        "nation": Table(
            "nation",
            (
                _c("n_nationkey", ColumnType.INTEGER),
                _c("n_name", ColumnType.CHAR, 25),
                _c("n_regionkey", ColumnType.INTEGER),
                _c("n_comment", ColumnType.VARCHAR, 80),
            ),
        ),
        "supplier": Table(
            "supplier",
            (
                _c("s_suppkey", ColumnType.INTEGER),
                _c("s_name", ColumnType.CHAR, 25),
                _c("s_address", ColumnType.VARCHAR, 30),
                _c("s_nationkey", ColumnType.INTEGER),
                _c("s_phone", ColumnType.CHAR, 15),
                _c("s_acctbal", ColumnType.DECIMAL),
                _c("s_comment", ColumnType.VARCHAR, 70),
            ),
        ),
        "customer": Table(
            "customer",
            (
                _c("c_custkey", ColumnType.INTEGER),
                _c("c_name", ColumnType.VARCHAR, 25),
                _c("c_address", ColumnType.VARCHAR, 30),
                _c("c_nationkey", ColumnType.INTEGER),
                _c("c_phone", ColumnType.CHAR, 15),
                _c("c_acctbal", ColumnType.DECIMAL),
                _c("c_mktsegment", ColumnType.CHAR, 10),
                _c("c_comment", ColumnType.VARCHAR, 80),
            ),
        ),
        "part": Table(
            "part",
            (
                _c("p_partkey", ColumnType.INTEGER),
                _c("p_name", ColumnType.VARCHAR, 40),
                _c("p_mfgr", ColumnType.CHAR, 25),
                _c("p_brand", ColumnType.CHAR, 10),
                _c("p_type", ColumnType.VARCHAR, 25),
                _c("p_size", ColumnType.INTEGER),
                _c("p_container", ColumnType.CHAR, 10),
                _c("p_retailprice", ColumnType.DECIMAL),
                _c("p_comment", ColumnType.VARCHAR, 14),
            ),
        ),
        "partsupp": Table(
            "partsupp",
            (
                _c("ps_partkey", ColumnType.INTEGER),
                _c("ps_suppkey", ColumnType.INTEGER),
                _c("ps_availqty", ColumnType.INTEGER),
                _c("ps_supplycost", ColumnType.DECIMAL),
                _c("ps_comment", ColumnType.VARCHAR, 124),
            ),
        ),
        "orders": Table(
            "orders",
            (
                _c("o_orderkey", ColumnType.INTEGER),
                _c("o_custkey", ColumnType.INTEGER),
                _c("o_orderstatus", ColumnType.CHAR, 1),
                _c("o_totalprice", ColumnType.DECIMAL),
                _c("o_orderdate", ColumnType.DATE),
                _c("o_orderpriority", ColumnType.CHAR, 15),
                _c("o_clerk", ColumnType.CHAR, 15),
                _c("o_shippriority", ColumnType.INTEGER),
                _c("o_comment", ColumnType.VARCHAR, 49),
            ),
        ),
        "lineitem": Table(
            "lineitem",
            (
                _c("l_orderkey", ColumnType.INTEGER),
                _c("l_partkey", ColumnType.INTEGER),
                _c("l_suppkey", ColumnType.INTEGER),
                _c("l_linenumber", ColumnType.INTEGER),
                _c("l_quantity", ColumnType.DECIMAL),
                _c("l_extendedprice", ColumnType.DECIMAL),
                _c("l_discount", ColumnType.DECIMAL),
                _c("l_tax", ColumnType.DECIMAL),
                _c("l_returnflag", ColumnType.CHAR, 1),
                _c("l_linestatus", ColumnType.CHAR, 1),
                _c("l_shipdate", ColumnType.DATE),
                _c("l_commitdate", ColumnType.DATE),
                _c("l_receiptdate", ColumnType.DATE),
                _c("l_shipinstruct", ColumnType.CHAR, 25),
                _c("l_shipmode", ColumnType.CHAR, 10),
                _c("l_comment", ColumnType.VARCHAR, 27),
            ),
        ),
    }


#: Primary-key columns of each table (used to build the ``*_pkey`` indexes).
PRIMARY_KEYS: Dict[str, tuple] = {
    "region": ("r_regionkey",),
    "nation": ("n_nationkey",),
    "supplier": ("s_suppkey",),
    "customer": ("c_custkey",),
    "part": ("p_partkey",),
    "partsupp": ("ps_partkey", "ps_suppkey"),
    "orders": ("o_orderkey",),
    "lineitem": ("l_orderkey", "l_linenumber"),
}


def pkey_name(table: str) -> str:
    """Name of a table's primary-key index object (paper Figure 4 naming)."""
    return f"{table}_pkey"


def build_catalog(scale_factor: float = 20.0, name: str = "tpch") -> DatabaseCatalog:
    """Build a TPC-H catalog at the requested scale factor.

    Every table gets a primary-key index, matching the sixteen placeable
    objects of the paper's TPC-H experiments (eight tables plus eight
    ``*_pkey`` indexes).
    """
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    catalog = DatabaseCatalog(name=f"{name}-sf{scale_factor:g}")
    tables = _tables()
    for table_name in TPCH_TABLE_NAMES:
        table = tables[table_name]
        catalog.add_table(table, table_row_count(table_name, scale_factor))
        catalog.add_index(
            Index(
                name=pkey_name(table_name),
                table=table_name,
                columns=PRIMARY_KEYS[table_name],
                unique=True,
                primary=True,
            )
        )
    return catalog
