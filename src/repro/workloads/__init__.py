"""Workload definitions: the generic container plus TPC-H / TPC-C style generators."""

from repro.workloads.workload import Workload, blend_transaction_mixes
from repro.workloads import synthetic, tpcc, tpch

__all__ = ["Workload", "blend_transaction_mixes", "synthetic", "tpcc", "tpch"]
