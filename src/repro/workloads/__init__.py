"""Workload definitions: the generic container plus TPC-H / TPC-C style generators.

Besides the single-kind :class:`~repro.workloads.workload.Workload`
container and the benchmark-style generators (:mod:`repro.workloads.tpch`,
:mod:`repro.workloads.tpcc`, :mod:`repro.workloads.synthetic`), the package
provides the cross-kind machinery the online drift study uses:
:class:`~repro.workloads.workload.CrossKindWorkload` blends an OLTP mix and
a DSS stream into one epoch, and :mod:`repro.workloads.crosskind` merges the
TPC-H and TPC-C schemas into a single catalog so the two benchmarks can
crossfade over one object universe.
"""

from repro.workloads.workload import (
    CrossKindWorkload,
    Workload,
    blend_transaction_mixes,
)
from repro.workloads import crosskind, synthetic, tpcc, tpch

__all__ = [
    "CrossKindWorkload",
    "Workload",
    "blend_transaction_mixes",
    "crosskind",
    "synthetic",
    "tpcc",
    "tpch",
]
