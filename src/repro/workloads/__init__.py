"""Workload definitions: the generic container plus TPC-H / TPC-C style generators."""

from repro.workloads.workload import Workload
from repro.workloads import synthetic, tpcc, tpch

__all__ = ["Workload", "synthetic", "tpcc", "tpch"]
