"""The workload container.

A workload is what the paper calls ``W``: a collection of queries together
with its concurrency and the metric the SLA is expressed in.  Two flavours
exist:

* **DSS** workloads are an explicit stream of queries executed back to back
  (the paper's TPC-H workloads, concurrency 1, per-query response-time SLAs);
* **OLTP** workloads are a weighted transaction mix driven by a closed
  population of clients (the paper's TPC-C workload, concurrency 300,
  throughput SLA measured on the New-Order transaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dbms.query import Query
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class Workload:
    """A query workload with its execution parameters.

    Attributes
    ----------
    name:
        Workload identifier used in reports.
    kind:
        ``"dss"`` (query stream, response-time metric) or ``"oltp"``
        (transaction mix, throughput metric).
    queries:
        The DSS query stream (ignored for OLTP workloads).
    transaction_mix:
        ``(query, weight)`` pairs describing the OLTP mix (ignored for DSS).
    concurrency:
        Degree of concurrency the workload runs at; selects the I/O profile
        calibration point (the paper uses 1 for TPC-H and 300 for TPC-C).
    measured_transaction_fraction:
        For OLTP, the share of the mix that counts toward the reported
        throughput metric (e.g. New-Order transactions for tpmC).
    duration_s:
        Nominal measurement window for OLTP workloads.
    description:
        Free-form description used in reports.
    """

    name: str
    kind: str = "dss"
    queries: Tuple[Query, ...] = ()
    transaction_mix: Tuple[Tuple[Query, float], ...] = ()
    concurrency: int = 1
    measured_transaction_fraction: float = 1.0
    duration_s: float = 3600.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("dss", "oltp"):
            raise WorkloadError(f"unknown workload kind {self.kind!r}")
        if self.kind == "dss" and not self.queries:
            raise WorkloadError(f"DSS workload {self.name!r} has no queries")
        if self.kind == "oltp" and not self.transaction_mix:
            raise WorkloadError(f"OLTP workload {self.name!r} has no transaction mix")
        if self.concurrency < 1:
            raise WorkloadError("workload concurrency must be >= 1")
        if not 0.0 < self.measured_transaction_fraction <= 1.0:
            raise WorkloadError("measured transaction fraction must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def is_dss(self) -> bool:
        """True for query-stream workloads."""
        return self.kind == "dss"

    @property
    def is_oltp(self) -> bool:
        """True for transaction-mix workloads."""
        return self.kind == "oltp"

    @property
    def all_queries(self) -> Tuple[Query, ...]:
        """Every query in the workload regardless of kind."""
        if self.is_dss:
            return self.queries
        return tuple(query for query, _ in self.transaction_mix)

    @property
    def query_names(self) -> Tuple[str, ...]:
        """Names of all queries in stream/mix order (duplicates preserved)."""
        return tuple(query.name for query in self.all_queries)

    def distinct_queries(self) -> List[Query]:
        """The distinct query templates of the workload (first occurrence order)."""
        seen: Dict[str, Query] = {}
        for query in self.all_queries:
            seen.setdefault(query.name, query)
        return list(seen.values())

    def referenced_objects(self) -> Tuple[str, ...]:
        """All object names referenced by any query of the workload."""
        seen: List[str] = []
        for query in self.all_queries:
            for name in query.referenced_objects:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def scaled_stream(self, repetitions: int) -> "Workload":
        """Return a DSS workload whose stream is repeated ``repetitions`` times."""
        if not self.is_dss:
            raise WorkloadError("scaled_stream only applies to DSS workloads")
        if repetitions < 1:
            raise WorkloadError("repetitions must be >= 1")
        return Workload(
            name=f"{self.name}-x{repetitions}",
            kind="dss",
            queries=self.queries * repetitions,
            concurrency=self.concurrency,
            description=self.description,
        )

    def subset(self, query_names: Sequence[str], name: Optional[str] = None) -> "Workload":
        """Return a DSS workload restricted to the named query templates."""
        if not self.is_dss:
            raise WorkloadError("subset only applies to DSS workloads")
        wanted = set(query_names)
        queries = tuple(query for query in self.queries if query.name in wanted)
        if not queries:
            raise WorkloadError("subset selects no queries")
        return Workload(
            name=name or f"{self.name}-subset",
            kind="dss",
            queries=queries,
            concurrency=self.concurrency,
            description=self.description,
        )

    # ------------------------------------------------------------------
    # Phase composition hooks (used by repro.online.drift)
    # ------------------------------------------------------------------
    def with_stream(self, queries: Sequence[Query], name: Optional[str] = None,
                    description: Optional[str] = None) -> "Workload":
        """Return a DSS workload with a replaced query stream.

        Execution parameters (concurrency) are preserved; the drifting
        workload generator uses this to materialise per-epoch streams
        composed from several phase workloads.
        """
        if not self.is_dss:
            raise WorkloadError("with_stream only applies to DSS workloads")
        if not queries:
            raise WorkloadError("with_stream needs at least one query")
        return Workload(
            name=name or self.name,
            kind="dss",
            queries=tuple(queries),
            concurrency=self.concurrency,
            description=description if description is not None else self.description,
        )


@dataclass(frozen=True)
class CrossKindWorkload:
    """A weighted blend of workloads of *different* kinds (``kind="mixed"``).

    When an epoch of a drifting workload mixes an OLTP phase with a DSS
    phase no single :class:`Workload` can represent it -- the two kinds have
    different metrics (throughput vs response time) and may run at different
    concurrencies.  A cross-kind workload therefore keeps its components
    side by side with their blend weights; consumers evaluate each component
    with its own kind's machinery and *blend the TOC metrics*: the epoch's
    cost index is ``sum_i w_i * TOC_i`` over the normalised weights, the
    same convex combination the phase schedule defines.

    Components must each be a pure (``dss``/``oltp``) workload with a
    positive weight; weights are normalised to sum to 1.
    """

    name: str
    components: Tuple[Tuple[Workload, float], ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.components:
            raise WorkloadError(f"cross-kind workload {self.name!r} has no components")
        for workload, weight in self.components:
            if getattr(workload, "kind", None) not in ("dss", "oltp"):
                raise WorkloadError(
                    "cross-kind components must be pure dss/oltp workloads"
                )
            if weight <= 0:
                raise WorkloadError(
                    f"component {workload.name!r} of {self.name!r} has a "
                    "non-positive blend weight"
                )
        total = sum(weight for _, weight in self.components)
        object.__setattr__(
            self,
            "components",
            tuple((workload, weight / total) for workload, weight in self.components),
        )

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """Always ``"mixed"`` -- the marker consumers dispatch on."""
        return "mixed"

    @property
    def is_dss(self) -> bool:
        """Never a pure query-stream workload."""
        return False

    @property
    def is_oltp(self) -> bool:
        """Never a pure transaction-mix workload."""
        return False

    @property
    def weights(self) -> Tuple[float, ...]:
        """The normalised blend weights, in component order."""
        return tuple(weight for _, weight in self.components)

    @property
    def dominant(self) -> Workload:
        """The component carrying the largest blend weight."""
        return max(self.components, key=lambda pair: pair[1])[0]

    @property
    def concurrency(self) -> int:
        """The dominant component's concurrency (profile calibration point)."""
        return self.dominant.concurrency

    @property
    def all_queries(self) -> Tuple[Query, ...]:
        """Every query of every component (duplicates preserved)."""
        queries: List[Query] = []
        for workload, _ in self.components:
            queries.extend(workload.all_queries)
        return tuple(queries)

    def referenced_objects(self) -> Tuple[str, ...]:
        """All object names referenced by any component."""
        seen: List[str] = []
        for workload, _ in self.components:
            for name in workload.referenced_objects():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)


def blend_transaction_mixes(
    workloads: Sequence[Workload],
    weights: Sequence[float],
    name: str,
    description: str = "",
) -> Workload:
    """Compose OLTP workloads into one blended transaction mix.

    Each component's mix weights are scaled by its blend weight and merged
    by query name (first-occurrence order across components), so a 70/30
    blend of two mixes issues 70 % of its transactions from the first.
    The measured-transaction fraction blends the same way; every component
    must run at one common concurrency for the closed-loop model to apply.
    """
    if len(workloads) != len(weights):
        raise WorkloadError("blend needs one weight per workload")
    active = [(workload, weight) for workload, weight in zip(workloads, weights) if weight > 0]
    if not active:
        raise WorkloadError("blend needs at least one positive weight")
    total = sum(weight for _, weight in active)
    concurrency = active[0][0].concurrency
    duration_s = active[0][0].duration_s
    merged: Dict[str, Tuple[Query, float]] = {}
    measured_fraction = 0.0
    for workload, weight in active:
        if not workload.is_oltp:
            raise WorkloadError("blend_transaction_mixes only applies to OLTP workloads")
        if workload.concurrency != concurrency:
            raise WorkloadError("blended OLTP workloads must share one concurrency")
        if workload.duration_s != duration_s:
            # duration_s feeds total_time_s (and through it reports); letting
            # it flip to whichever component happens to be first would make
            # epoch costs jump discontinuously as weights cross zero.
            raise WorkloadError("blended OLTP workloads must share one measurement window")
        share = weight / total
        mix_total = sum(mix_weight for _, mix_weight in workload.transaction_mix)
        for query, mix_weight in workload.transaction_mix:
            scaled = share * (mix_weight / mix_total)
            if query.name in merged:
                merged[query.name] = (merged[query.name][0], merged[query.name][1] + scaled)
            else:
                merged[query.name] = (query, scaled)
        measured_fraction += share * workload.measured_transaction_fraction
    return Workload(
        name=name,
        kind="oltp",
        transaction_mix=tuple(merged.values()),
        concurrency=concurrency,
        measured_transaction_fraction=measured_fraction,
        duration_s=duration_s,
        description=description,
    )
