"""Fault injection and chaos-testing support for the advisor stack.

``repro.resilience`` holds the seeded fault-injection harness
(:class:`FaultPlan` / :class:`FaultInjector`) that the recovery machinery in
the parallel search, the solver layer and the online control plane is tested
against.  See :mod:`repro.resilience.faults` for the failure-mode taxonomy
and EXPERIMENTS.md ("Failure modes & recovery") for the fault matrix.
"""

from repro.resilience.faults import (
    CORRUPTION_MODES,
    EPOCH_FAULT_KINDS,
    SERVICE_FAULT_KINDS,
    SHARD_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_file,
    fire_shard_fault,
)

__all__ = [
    "CORRUPTION_MODES",
    "EPOCH_FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "corrupt_file",
    "fire_shard_fault",
]
