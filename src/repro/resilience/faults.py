"""Seeded, deterministic fault injection for chaos-testing the advisor stack.

A provisioning run on a real fleet survives crashed workers, stragglers,
blown solve budgets, truncated checkpoints and telemetry gaps -- or it is not
useful.  This module makes those failure modes *injectable* so the recovery
machinery in :mod:`repro.core.parallel_search`, :mod:`repro.core.solver` and
:mod:`repro.online.controller` can be exercised deterministically:

* a :class:`FaultPlan` is pure data -- an explicit map from injection points
  (``(shard_id, attempt)`` for the parallel search, ``epoch`` for the online
  control plane) to :class:`FaultSpec` instructions.  Plans built through the
  seeded constructors (:meth:`FaultPlan.chaos_search`,
  :meth:`FaultPlan.chaos_online`) are reproducible bit for bit from their
  seed, and a plan is picklable so it travels to pool workers unchanged;
* a :class:`FaultInjector` wraps a plan at run time and answers the hook
  queries the machinery places at its injection points.  With no plan (or no
  entry for the query) every hook is a no-op, so production runs pay one
  dictionary lookup per injection point;
* :func:`fire_shard_fault` performs a shard-scoped fault inside a worker
  (raise, delay, or hard ``os._exit`` process kill), and
  :func:`corrupt_file` damages a checkpoint on disk the way a crashed or
  out-of-space writer would (truncation, garbled bytes, non-JSON junk).

The cardinal rule of every injected fault: recovery must reproduce the
fault-free result exactly (the parallel search's bitwise-identity contract)
or degrade along a declared path with the incident recorded -- never both
silently wrong and silently quiet.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError, ShardFailureError

#: Fault kinds scoped to one enumeration shard attempt (parallel search).
SHARD_FAULT_KINDS = ("worker_crash", "shard_exception", "straggler_delay")
#: Fault kinds scoped to one epoch of the online control plane.
EPOCH_FAULT_KINDS = (
    "telemetry_dropout",
    "telemetry_outlier",
    "solver_overrun",
    "solver_error",
    "migration_failure",
)
#: Fault kinds scoped to one scheduler tick of the multi-tenant service.
SERVICE_FAULT_KINDS = ("worker_kill", "overload_burst", "slow_solve")
#: Checkpoint damage modes understood by :func:`corrupt_file`.
CORRUPTION_MODES = ("truncate", "garble", "junk")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault instruction.

    ``kind`` selects the failure mode; the remaining fields parameterise it
    (only the ones the kind reads matter):

    * ``straggler_delay`` -- sleep ``delay_s`` before processing;
    * ``telemetry_outlier`` -- scale the epoch's observed I/O counts by
      ``factor`` (a flaky counter reporting 25x the real traffic);
    * ``migration_failure`` -- fail the first ``attempts`` executor attempts;
    * ``solver_overrun`` -- stall the re-tier solve by ``delay_s`` so it
      blows its deadline (rather than erroring outright like
      ``solver_error``);
    * ``worker_kill`` -- crash ``count`` busy service workers at the tick,
      before their in-flight steps commit (the supervisor's heartbeat
      watchdog must detect and requeue);
    * ``overload_burst`` -- occupy ``count`` slots of the service's bounded
      work queue for the tick, forcing admission control to shed;
    * ``slow_solve`` -- charge ``delay_s`` extra wall-clock seconds to every
      solve dispatched at the tick (a stalled estimator or noisy neighbour).
    """

    kind: str
    delay_s: float = 0.0
    factor: float = 1.0
    attempts: int = 1
    count: int = 1
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SHARD_FAULT_KINDS + EPOCH_FAULT_KINDS + SERVICE_FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults to inject into one run.

    ``shard_faults`` keys are ``(shard_id, attempt)`` -- keying by attempt is
    what makes chaos runs *recoverable by construction*: a fault registered
    for attempt 0 does not re-fire on the retry, so a bounded-retry search
    converges to the fault-free answer.  ``epoch_faults`` keys are epoch
    numbers of the online loop; ``service_faults`` keys are scheduler ticks
    of the multi-tenant service daemon (kills/bursts/slowdowns only delay
    work -- shed items are re-offered -- so a chaos service run converges to
    the fault-free layouts the same way).
    """

    shard_faults: Dict[Tuple[int, int], FaultSpec] = field(default_factory=dict)
    epoch_faults: Dict[int, Tuple[FaultSpec, ...]] = field(default_factory=dict)
    service_faults: Dict[int, Tuple[FaultSpec, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_shard_fault(self, shard_id: int, spec: FaultSpec, attempt: int = 0) -> "FaultPlan":
        """Register one shard-scoped fault; returns self for chaining."""
        if spec.kind not in SHARD_FAULT_KINDS:
            raise ConfigurationError(f"{spec.kind!r} is not a shard-scoped fault")
        self.shard_faults[(shard_id, attempt)] = spec
        return self

    def add_epoch_fault(self, epoch: int, spec: FaultSpec) -> "FaultPlan":
        """Register one epoch-scoped fault; returns self for chaining."""
        if spec.kind not in EPOCH_FAULT_KINDS:
            raise ConfigurationError(f"{spec.kind!r} is not an epoch-scoped fault")
        self.epoch_faults[epoch] = self.epoch_faults.get(epoch, ()) + (spec,)
        return self

    def add_service_fault(self, tick: int, spec: FaultSpec) -> "FaultPlan":
        """Register one service-tick-scoped fault; returns self for chaining."""
        if spec.kind not in SERVICE_FAULT_KINDS:
            raise ConfigurationError(f"{spec.kind!r} is not a service-scoped fault")
        self.service_faults[tick] = self.service_faults.get(tick, ()) + (spec,)
        return self

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing."""
        return not (self.shard_faults or self.epoch_faults or self.service_faults)

    # ------------------------------------------------------------------
    @classmethod
    def chaos_search(
        cls,
        seed: int,
        shard_ids: Sequence[int],
        crash_fraction: float = 0.5,
        exception_fraction: float = 0.0,
        delay_fraction: float = 0.0,
        delay_s: float = 0.05,
    ) -> "FaultPlan":
        """A seeded chaos schedule over one enumeration's shards.

        Disjoint subsets of ``shard_ids`` are assigned a hard worker kill, a
        shard exception, or a straggler delay (all on attempt 0, so every
        shard recovers on its first retry).  The same seed always yields the
        same plan.
        """
        if crash_fraction + exception_fraction + delay_fraction > 1.0:
            raise ConfigurationError("fault fractions sum past 1.0: shards would overlap")
        rng = random.Random(seed)
        shuffled = list(shard_ids)
        rng.shuffle(shuffled)
        plan = cls()
        cursor = 0
        for fraction, kind in (
            (crash_fraction, "worker_crash"),
            (exception_fraction, "shard_exception"),
            (delay_fraction, "straggler_delay"),
        ):
            count = int(round(fraction * len(shuffled)))
            for shard_id in shuffled[cursor:cursor + count]:
                plan.add_shard_fault(shard_id, FaultSpec(kind=kind, delay_s=delay_s))
            cursor += count
        return plan

    @classmethod
    def chaos_online(
        cls,
        seed: int,
        num_epochs: int,
        dropout_fraction: float = 0.2,
        outlier_fraction: float = 0.0,
        outlier_factor: float = 25.0,
        solver_error_epochs: Sequence[int] = (),
        solver_overrun_epochs: Sequence[int] = (),
        overrun_delay_s: float = 0.0,
        migration_failure_epochs: Sequence[int] = (),
        migration_failure_attempts: int = 1,
    ) -> "FaultPlan":
        """A seeded chaos schedule over one online run's epochs.

        Epoch 0 (the cold initial provisioning) is never given a telemetry
        fault -- there is no telemetry before the first observation to drop.
        Dropouts and outliers draw from disjoint epoch subsets.
        """
        rng = random.Random(seed)
        eligible = list(range(1, num_epochs))
        rng.shuffle(eligible)
        plan = cls()
        dropouts = int(round(dropout_fraction * num_epochs))
        outliers = int(round(outlier_fraction * num_epochs))
        for epoch in eligible[:dropouts]:
            plan.add_epoch_fault(epoch, FaultSpec(kind="telemetry_dropout"))
        for epoch in eligible[dropouts:dropouts + outliers]:
            plan.add_epoch_fault(
                epoch, FaultSpec(kind="telemetry_outlier", factor=outlier_factor)
            )
        for epoch in solver_error_epochs:
            plan.add_epoch_fault(epoch, FaultSpec(kind="solver_error"))
        for epoch in solver_overrun_epochs:
            plan.add_epoch_fault(
                epoch, FaultSpec(kind="solver_overrun", delay_s=overrun_delay_s)
            )
        for epoch in migration_failure_epochs:
            plan.add_epoch_fault(
                epoch,
                FaultSpec(kind="migration_failure", attempts=migration_failure_attempts),
            )
        return plan

    @classmethod
    def chaos_service(
        cls,
        seed: int,
        num_ticks: int,
        kill_fraction: float = 0.1,
        kill_count: int = 1,
        burst_fraction: float = 0.1,
        burst_slots: int = 4,
        slow_fraction: float = 0.1,
        slow_s: float = 0.02,
    ) -> "FaultPlan":
        """A seeded kill/overload/slow-solve storm over one service run.

        Disjoint tick subsets get a worker kill (``kill_count`` workers
        crash before their in-flight steps commit), an overload burst
        (``burst_slots`` queue slots occupied, shedding admissions) or a
        slow solve (``delay_s`` charged to every step of the tick).  Tick 0
        is spared so the storm always hits a running service, and the same
        seed yields the same storm -- the chaos recovery lock compares the
        stormed run bitwise against the fault-free one.
        """
        if kill_fraction + burst_fraction + slow_fraction > 1.0:
            raise ConfigurationError("fault fractions sum past 1.0: ticks would overlap")
        rng = random.Random(seed)
        eligible = list(range(1, num_ticks))
        rng.shuffle(eligible)
        plan = cls()
        cursor = 0
        for fraction, spec in (
            (kill_fraction, FaultSpec(kind="worker_kill", count=kill_count)),
            (burst_fraction, FaultSpec(kind="overload_burst", count=burst_slots)),
            (slow_fraction, FaultSpec(kind="slow_solve", delay_s=slow_s)),
        ):
            count = int(round(fraction * num_ticks))
            for tick in eligible[cursor:cursor + count]:
                plan.add_service_fault(tick, spec)
            cursor += count
        return plan


class FaultInjector:
    """Runtime face of a :class:`FaultPlan`: the hooks the machinery queries.

    Instances are cheap, stateless between queries (all determinism lives in
    the plan) and picklable, so one injector serves the coordinator and every
    pool worker.  ``injector=None`` at every injection point means "no
    faults"; the hooks below also accept a missing plan entry as a no-op.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()

    # -- parallel search -------------------------------------------------
    def shard_fault(self, shard_id: int, attempt: int) -> Optional[FaultSpec]:
        """The fault (if any) scheduled for this shard attempt."""
        return self.plan.shard_faults.get((shard_id, attempt))

    # -- online control plane --------------------------------------------
    def _epoch_fault(self, epoch: int, *kinds: str) -> Optional[FaultSpec]:
        for spec in self.plan.epoch_faults.get(epoch, ()):
            if spec.kind in kinds:
                return spec
        return None

    def telemetry_fault(self, epoch: int) -> Optional[FaultSpec]:
        """A telemetry dropout/outlier scheduled for this epoch, if any."""
        return self._epoch_fault(epoch, "telemetry_dropout", "telemetry_outlier")

    def solver_fault(self, epoch: int) -> Optional[FaultSpec]:
        """A solver error/overrun scheduled for this epoch, if any."""
        return self._epoch_fault(epoch, "solver_error", "solver_overrun")

    def migration_fault(self, epoch: int, attempt: int) -> bool:
        """True when this migration-executor attempt should fail."""
        spec = self._epoch_fault(epoch, "migration_failure")
        return spec is not None and attempt < spec.attempts

    # -- multi-tenant service --------------------------------------------
    def _service_fault(self, tick: int, kind: str) -> Optional[FaultSpec]:
        for spec in self.plan.service_faults.get(tick, ()):
            if spec.kind == kind:
                return spec
        return None

    def worker_kills(self, tick: int) -> int:
        """How many service workers an injected kill crashes at this tick."""
        spec = self._service_fault(tick, "worker_kill")
        return spec.count if spec is not None else 0

    def burst_slots(self, tick: int) -> int:
        """Queue slots an injected overload burst occupies at this tick."""
        spec = self._service_fault(tick, "overload_burst")
        return spec.count if spec is not None else 0

    def solve_delay_s(self, tick: int) -> float:
        """Extra seconds an injected slowdown charges to solves at this tick."""
        spec = self._service_fault(tick, "slow_solve")
        return spec.delay_s if spec is not None else 0.0


def fire_shard_fault(spec: FaultSpec, shard_id: int, attempt: int,
                     allow_process_kill: bool = True) -> None:
    """Perform one shard-scoped fault at its injection point.

    Runs inside the worker (or the in-process serial path, where a hard
    process kill is demoted to an exception -- killing the coordinator would
    test nothing).  ``worker_crash`` uses ``os._exit`` so not even cleanup
    handlers run: the pool loses the process mid-task exactly like an OOM
    kill, and only the coordinator's dead-worker timeout can recover.
    """
    if spec.kind == "straggler_delay":
        time.sleep(spec.delay_s)
        return
    if spec.kind == "worker_crash" and allow_process_kill:
        os._exit(17)
    raise ShardFailureError(
        spec.message or f"injected {spec.kind} on shard {shard_id} attempt {attempt}",
        shard_id=shard_id,
        attempts=attempt + 1,
    )


def corrupt_file(path: Union[str, Path], mode: str = "truncate", seed: int = 0) -> Path:
    """Damage a file on disk the way real checkpoint corruption does.

    * ``truncate`` -- keep only the first half of the bytes (a writer that
      died mid-flush or ran out of space);
    * ``garble`` -- overwrite a span in the middle with seeded random bytes
      (bit rot / a torn sector), keeping the length unchanged;
    * ``junk`` -- replace the content with non-JSON garbage.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    elif mode == "garble":
        rng = random.Random(seed)
        blob = bytearray(data)
        span = max(1, len(blob) // 8)
        start = len(blob) // 3
        for position in range(start, min(start + span, len(blob))):
            blob[position] = rng.randrange(256)
        path.write_bytes(bytes(blob))
    elif mode == "junk":
        path.write_bytes(b"\x00not json at all\xff")
    else:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r} (known: {', '.join(CORRUPTION_MODES)})"
        )
    return path


__all__ = [
    "SHARD_FAULT_KINDS",
    "EPOCH_FAULT_KINDS",
    "CORRUPTION_MODES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "fire_shard_fault",
    "corrupt_file",
]
