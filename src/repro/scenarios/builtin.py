"""The built-in scenarios: every experiment configuration of the repo, named.

Each registration below captures one catalog/workload/estimator recipe the
figure drivers, benchmarks and examples used to assemble inline:

* the paper's evaluation workloads (``tpch_original``, ``tpch_modified``,
  ``tpch_es_subset``, ``tpcc_fig8``, ``fig9_tpcc``);
* the repo's own performance studies (``synthetic_scaling``,
  ``synthetic_scaling_limited``, ``synthetic_small``);
* the drifting-workload study of the online subsystem
  (``tpch_drift_crossfade``).

Builders construct everything fresh per call from deterministic parameters,
so results built from a scenario are bitwise identical to the hand-assembled
setups they replace.
"""

from __future__ import annotations

from typing import Optional

from repro.dbms.buffer_pool import BufferPool
from repro.dbms.datagen import SyntheticTableSpec, build_synthetic_catalog
from repro.dbms.executor import WorkloadEstimator
from repro.dbms.query import JoinSpec, Query, TableAccess
from repro.scenarios.registry import Scenario, ScenarioBundle, box_system, register
from repro.sla.constraints import RelativeSLA
from repro.workloads import tpcc, tpch
from repro.workloads.workload import Workload


# ---------------------------------------------------------------------------
# TPC-H (Sections 4.4 / 5)
# ---------------------------------------------------------------------------

def _tpch_bundle(
    name: str,
    workload_kind: str,
    scale_factor: float,
    repetitions: int,
    sla_ratio: Optional[float],
    buffer_pool_gb: float = 4.0,
) -> ScenarioBundle:
    catalog = tpch.build_catalog(scale_factor)
    if workload_kind == "original":
        workload = tpch.original_workload(scale_factor, repetitions=repetitions)
    elif workload_kind == "modified":
        workload = tpch.modified_workload(scale_factor, repetitions=repetitions)
    elif workload_kind == "es-subset":
        workload = tpch.es_subset_workload(scale_factor, repetitions=repetitions)
    else:
        raise ValueError(f"unknown TPC-H workload kind {workload_kind!r}")

    def estimator_factory():
        return WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=buffer_pool_gb))

    extras = {}
    if workload_kind == "es-subset":
        from repro.workloads.tpch.queries import ES_SUBSET_OBJECTS

        extras["es_object_names"] = tuple(ES_SUBSET_OBJECTS)
    return ScenarioBundle(
        name=name,
        catalog=catalog,
        workload=workload,
        estimator=estimator_factory(),
        objects=catalog.database_objects(),
        sla=RelativeSLA(sla_ratio) if sla_ratio is not None else None,
        estimator_factory=estimator_factory,
        extras=extras,
    )


register(Scenario(
    name="tpch_original",
    description="The 22 original TPC-H templates (sequential-read heavy DSS).",
    workload="TPC-H original (22 templates)",
    system="Box 1 / Box 2",
    constraint="relative SLA 0.5 (response time)",
    figure="Figures 3-4",
    builder=lambda scale_factor, repetitions, sla_ratio: _tpch_bundle(
        "tpch_original", "original", scale_factor, repetitions, sla_ratio
    ),
    defaults={"scale_factor": 20.0, "repetitions": 3, "sla_ratio": 0.5},
))

register(Scenario(
    name="tpch_modified",
    description="The modified (ODS-style, random-I/O heavy) TPC-H workload.",
    workload="TPC-H modified (selective lookups)",
    system="Box 1 / Box 2",
    constraint="relative SLA 0.5 or 0.25 (response time)",
    figure="Figures 5-7",
    builder=lambda scale_factor, repetitions, sla_ratio: _tpch_bundle(
        "tpch_modified", "modified", scale_factor, repetitions, sla_ratio
    ),
    defaults={"scale_factor": 20.0, "repetitions": 20, "sla_ratio": 0.5},
))

register(Scenario(
    name="tpch_es_subset",
    description="The reduced TPC-H study: the eight-object workload the paper "
                "uses to make exhaustive search tractable (extras carry the "
                "enumerated object names).",
    workload="TPC-H ES subset (8 objects)",
    system="Box 1 / Box 2 (optional capacity limits)",
    constraint="relative SLA 0.5 (response time)",
    figure="Section 4.4.3",
    builder=lambda scale_factor, repetitions, sla_ratio: _tpch_bundle(
        "tpch_es_subset", "es-subset", scale_factor, repetitions, sla_ratio
    ),
    defaults={"scale_factor": 20.0, "repetitions": 3, "sla_ratio": 0.5},
))


# ---------------------------------------------------------------------------
# TPC-C (Section 4.5)
# ---------------------------------------------------------------------------

def _tpcc_bundle(
    name: str,
    warehouses: int,
    concurrency: int,
    sla_ratio: Optional[float],
    buffer_pool_gb: float = 4.0,
    **extras,
) -> ScenarioBundle:
    catalog = tpcc.build_catalog(warehouses)
    workload = tpcc.oltp_workload(warehouses, concurrency=concurrency)

    def estimator_factory():
        return WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=buffer_pool_gb))

    return ScenarioBundle(
        name=name,
        catalog=catalog,
        workload=workload,
        estimator=estimator_factory(),
        objects=catalog.database_objects(),
        sla=(
            RelativeSLA(sla_ratio, metric="throughput")
            if sla_ratio is not None
            else None
        ),
        # The paper profiles TPC-C via a test run on the single all-H-SSD
        # baseline: the all-random-I/O plans never change with the layout.
        profile_mode="testrun",
        single_baseline_profile=True,
        estimator_factory=estimator_factory,
        extras=dict(extras),
    )


register(Scenario(
    name="tpcc_fig8",
    description="The TPC-C transaction mix under throughput SLAs.",
    workload="TPC-C mix (300 clients)",
    system="Box 1 / Box 2",
    constraint="relative SLA 0.5/0.25/0.125 (throughput)",
    figure="Figure 8, Table 3",
    builder=lambda warehouses, concurrency, sla_ratio: _tpcc_bundle(
        "tpcc_fig8", warehouses, concurrency, sla_ratio
    ),
    defaults={"warehouses": 300, "concurrency": 300, "sla_ratio": 0.5},
))

register(Scenario(
    name="fig9_tpcc",
    description="The TPC-C ES-vs-DOT study: hot tables enumerated per group, "
                "cold objects pinned (extras carry the hot group names).",
    workload="TPC-C mix (300 clients)",
    system="Box 2 (optional H-SSD capacity limit)",
    constraint="relative SLA 0.25 (throughput)",
    figure="Figure 9 / Section 4.5.3",
    builder=lambda warehouses, concurrency, sla_ratio: _tpcc_bundle(
        "fig9_tpcc", warehouses, concurrency, sla_ratio,
        hot_groups=("stock", "order_line", "customer"),
    ),
    defaults={"warehouses": 300, "concurrency": 300, "sla_ratio": 0.25},
))


# ---------------------------------------------------------------------------
# Synthetic scaling scenarios (repo performance studies)
# ---------------------------------------------------------------------------

def synthetic_scaling_workload(num_tables: int, include_lookups: bool = True):
    """A synthetic catalog of ``num_tables`` tables (+ one pkey index each,
    so ``2 * num_tables`` placeable objects) and a mixed
    scan/lookup/join workload touching all of them -- the scaling study's
    layout-sensitive DSS shape.

    ``include_lookups=False`` drops the keyed index lookups, leaving a
    scan/join workload whose plans do not flip with the layout -- the shape
    where the profile-once Object Advisor baseline has no plan-interaction
    blind spot and stays SLA-feasible (the cross-solver sanity harness
    relies on this)."""
    specs = [
        SyntheticTableSpec(
            f"t{i}", row_count=200_000 + 137_000 * i, row_width_bytes=120 + 10 * i
        )
        for i in range(num_tables)
    ]
    catalog = build_synthetic_catalog(specs, name=f"scaling-{num_tables}")
    queries = []
    for i in range(num_tables):
        queries.append(
            Query(
                name=f"scan_t{i}",
                accesses=(TableAccess(f"t{i}", selectivity=0.8),),
                aggregate_rows=100_000,
            )
        )
        if include_lookups:
            queries.append(
                Query(
                    name=f"lookup_t{i}",
                    accesses=(
                        TableAccess(f"t{i}", selectivity=0.0001, index=f"t{i}_pkey",
                                    key_lookup=True),
                    ),
                )
            )
    for i in range(num_tables - 1):
        queries.append(
            Query(
                name=f"join_t{i}_t{i + 1}",
                accesses=(
                    TableAccess(f"t{i}", selectivity=0.01),
                    TableAccess(f"t{i + 1}", selectivity=1.0, index=f"t{i + 1}_pkey"),
                ),
                joins=(
                    JoinSpec(inner_position=1, rows_per_outer=3.0,
                             inner_index=f"t{i + 1}_pkey"),
                ),
                aggregate_rows=1_000,
            )
        )
    workload = Workload(name=f"scaling-{num_tables}", kind="dss",
                        queries=tuple(queries), concurrency=1)
    return catalog, workload


def _synthetic_bundle(
    name: str,
    num_tables: int,
    capacity_fraction: Optional[float],
    sla_ratio: Optional[float],
    seed: int = 7,
    include_lookups: bool = True,
) -> ScenarioBundle:
    catalog, workload = synthetic_scaling_workload(num_tables, include_lookups)
    objects = catalog.database_objects()

    def estimator_factory():
        # Deterministic: no noise, no buffer pool, fixed seed -- the scaling
        # studies assert bitwise equality across evaluation paths.
        return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=seed)

    system = None
    if capacity_fraction is not None:
        # A binding fast-class limit gives the capacity pruning bound (and
        # SLA-feasibility questions) real work.
        total_gb = sum(obj.size_gb for obj in objects)
        system = box_system("Box 1", {"H-SSD": total_gb * capacity_fraction})
    return ScenarioBundle(
        name=name,
        catalog=catalog,
        workload=workload,
        estimator=estimator_factory(),
        objects=objects,
        system=system,
        sla=RelativeSLA(sla_ratio) if sla_ratio is not None else None,
        estimator_factory=estimator_factory,
    )


register(Scenario(
    name="synthetic_scaling",
    description="Growing synthetic object sets for the scalar-vs-batch "
                "evaluation engine study.",
    workload="synthetic scan/lookup/join mix",
    system="Box 1",
    constraint="none",
    figure="— (repo: bench_scaling_batch_eval)",
    builder=lambda num_tables, sla_ratio: _synthetic_bundle(
        "synthetic_scaling", num_tables, None, sla_ratio
    ),
    defaults={"num_tables": 6, "sla_ratio": None},
))

register(Scenario(
    name="synthetic_scaling_limited",
    description="The scaling scenario with a binding H-SSD capacity limit, "
                "exercising the parallel engine's branch-and-bound pruning.",
    workload="synthetic scan/lookup/join mix",
    system="Box 1, H-SSD capped at a fraction of the data volume",
    constraint="none",
    figure="— (repo: bench_parallel_es)",
    builder=lambda num_tables, capacity_fraction, sla_ratio: _synthetic_bundle(
        "synthetic_scaling_limited", num_tables, capacity_fraction, sla_ratio
    ),
    defaults={"num_tables": 6, "capacity_fraction": 0.45, "sla_ratio": None},
))

register(Scenario(
    name="synthetic_sanity",
    description="The tiny instance with a scan/join-only workload (no keyed "
                "lookups): plans never flip with the layout, so OA and the "
                "MILP relaxation stay SLA-feasible and the solvers can be "
                "cross-checked against the ES optimum.",
    workload="synthetic scan/join mix (plan-stable)",
    system="Box 1",
    constraint="relative SLA 0.25 (response time)",
    figure="— (repo: tests/test_solver_interface)",
    builder=lambda num_tables, sla_ratio: _synthetic_bundle(
        "synthetic_sanity", num_tables, None, sla_ratio, include_lookups=False
    ),
    defaults={"num_tables": 3, "sla_ratio": 0.25},
))

register(Scenario(
    name="synthetic_small",
    description="A deliberately tiny instance (3 tables = 6 objects x 3 "
                "classes) where exhaustive search is instant: the "
                "solver-vs-legacy equality harness (for cross-solver "
                "sanity use synthetic_sanity, whose plans never flip).",
    workload="synthetic scan/lookup/join mix",
    system="Box 1",
    constraint="relative SLA 0.5 (response time)",
    figure="— (repo: tests/test_solver_interface)",
    builder=lambda num_tables, sla_ratio: _synthetic_bundle(
        "synthetic_small", num_tables, None, sla_ratio
    ),
    defaults={"num_tables": 3, "sla_ratio": 0.5},
))


# ---------------------------------------------------------------------------
# Drifting workloads (the online re-provisioning study)
# ---------------------------------------------------------------------------

def _drift_bundle(
    scale_factor: float,
    num_epochs: int,
    seed: int,
    oltp_repetitions: int,
    olap_repetitions: int,
    schedule=None,
) -> ScenarioBundle:
    # Imported lazily: the online subsystem is optional for scenario users.
    from repro.online.drift import DriftingWorkloadGenerator, PhaseSchedule, WorkloadPhase

    catalog = tpch.build_catalog(scale_factor)

    def estimator_factory():
        # No noise and no buffer pool: estimates equal simulated runs, so the
        # drift study is deterministic end to end.
        return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None)

    transactional = tpch.modified_workload(scale_factor, repetitions=oltp_repetitions)
    analytical = tpch.original_workload(scale_factor, repetitions=olap_repetitions)
    phases = [
        WorkloadPhase("oltp", transactional),
        WorkloadPhase("olap", analytical),
    ]
    chosen_schedule = schedule or PhaseSchedule.crossfade(num_epochs, ("oltp", "olap"))
    generator = DriftingWorkloadGenerator(
        phases, chosen_schedule, seed=seed,
        name=f"tpch-crossfade-sf{scale_factor:g}",
    )
    return ScenarioBundle(
        name="tpch_drift_crossfade",
        catalog=catalog,
        workload=transactional,
        estimator=estimator_factory(),
        objects=catalog.database_objects(),
        estimator_factory=estimator_factory,
        extras={
            "generator": generator,
            "schedule": chosen_schedule,
            "transactional": transactional,
            "analytical": analytical,
        },
    )


def _crosskind_drift_bundle(
    scale_factor: float,
    warehouses: int,
    oltp_concurrency: int,
    num_epochs: int,
    seed: int,
    olap_repetitions: int,
    schedule=None,
) -> ScenarioBundle:
    # Imported lazily: the online subsystem is optional for scenario users.
    from repro.online.drift import DriftingWorkloadGenerator, PhaseSchedule, WorkloadPhase
    from repro.workloads.crosskind import tpch_tpcc_workloads

    catalog, oltp, dss = tpch_tpcc_workloads(
        scale_factor=scale_factor,
        warehouses=warehouses,
        oltp_concurrency=oltp_concurrency,
        olap_repetitions=olap_repetitions,
    )

    def estimator_factory():
        # No noise and no buffer pool: estimates equal simulated runs, so the
        # drift study is deterministic end to end.
        return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None)

    phases = [WorkloadPhase("tpcc", oltp), WorkloadPhase("tpch", dss)]
    chosen_schedule = schedule or PhaseSchedule.crossfade(num_epochs, ("tpcc", "tpch"))
    generator = DriftingWorkloadGenerator(
        phases, chosen_schedule, seed=seed, cross_kind=True,
        name=f"tpcc-to-tpch-sf{scale_factor:g}-w{warehouses}",
    )
    return ScenarioBundle(
        name="tpch_tpcc_crosskind_drift",
        catalog=catalog,
        workload=oltp,
        estimator=estimator_factory(),
        objects=catalog.database_objects(),
        estimator_factory=estimator_factory,
        extras={
            "generator": generator,
            "schedule": chosen_schedule,
            "transactional": oltp,
            "analytical": dss,
        },
    )


register(Scenario(
    name="tpch_tpcc_crosskind_drift",
    description="Cross-kind drift: the TPC-C transaction mix (throughput "
                "metric, closed-loop clients) crossfades into the TPC-H "
                "query stream (response-time metric) over one merged "
                "catalog; blended epochs are CrossKindWorkloads whose TOC "
                "the online controller mixes by the phase weights.",
    workload="TPC-C mix -> TPC-H original crossfade (kind-mixed epochs)",
    system="Box 1 / Box 2",
    constraint="relative SLA, metric per component kind",
    figure="— (repo: experiments.drift.crosskind / bench_online_drift)",
    builder=_crosskind_drift_bundle,
    defaults={"scale_factor": 2.0, "warehouses": 30, "oltp_concurrency": 100,
              "num_epochs": 12, "seed": 2024, "olap_repetitions": 1,
              "schedule": None},
))


register(Scenario(
    name="tpch_drift_crossfade",
    description="OLTP-to-OLAP crossfade: the modified workload smoothly "
                "drifts into the original one over the epoch schedule "
                "(extras carry the epoch generator and component workloads).",
    workload="TPC-H modified -> original crossfade",
    system="Box 1 / Box 2",
    constraint="relative SLA 0.25 (response time), re-resolved per epoch",
    figure="— (repo: experiments.drift / bench_online_drift)",
    builder=_drift_bundle,
    defaults={"scale_factor": 4.0, "num_epochs": 12, "seed": 2024,
              "oltp_repetitions": 4, "olap_repetitions": 1, "schedule": None},
))
