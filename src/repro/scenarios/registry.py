"""The scenario registry: named experiment configurations, built on demand.

A *scenario* is everything the experiment layer used to assemble by hand at
the top of each figure driver, benchmark and example: a database catalog, a
workload, a workload estimator, and the conventions (profiling mode, default
SLA shape, which figure of the paper it reproduces).  Registering those
recipes under stable names -- ``tpch_original``, ``tpcc_fig8``,
``fig9_tpcc``, ``synthetic_scaling``, ... -- turns a figure into "scenario x
solver list" and gives new workloads exactly one place to plug in.

Layering: a :class:`Scenario` is a *recipe* (cheap, importable, listable);
:meth:`Scenario.build` produces a :class:`ScenarioBundle` (the constructed
catalog/workload/estimator, potentially expensive); and
:meth:`ScenarioBundle.context` packages the bundle with a storage system and
SLA into the :class:`~repro.core.context.EvaluationContext` the solver
protocol consumes.  Builders construct everything freshly per call with
deterministic parameters, so two builds of the same scenario are
independent and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.batch_eval import QueryEstimateCache
from repro.core.context import EvaluationContext
from repro.core.layout import Layout
from repro.core.profiles import WorkloadProfileSet
from repro.exceptions import ConfigurationError
from repro.objects import DatabaseObject
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.storage.storage_class import StorageSystem


def box_system(
    box: str = "Box 1",
    capacity_limits_gb: Optional[Mapping[str, float]] = None,
    pricing=None,
) -> StorageSystem:
    """A storage system by paper name, optionally capacity-limited.

    ``"Box 1"`` is HDD RAID 0 + L-SSD + H-SSD, ``"Box 2"`` HDD + L-SSD
    RAID 0 + H-SSD (Section 4.1); ``"All classes"`` is the hypothetical
    five-class system of the Section 5.1 provisioning study.
    """
    if box == "Box 1":
        system = storage_catalog.box1(pricing)
    elif box == "Box 2":
        system = storage_catalog.box2(pricing)
    elif box == "All classes":
        system = storage_catalog.full_system(pricing)
    else:
        raise ConfigurationError(
            f"unknown box {box!r} (expected 'Box 1', 'Box 2' or 'All classes')"
        )
    if capacity_limits_gb:
        system = system.with_capacity_limits(capacity_limits_gb)
    return system


#: Sentinel for :meth:`ScenarioBundle.context`'s ``sla``: "use the
#: scenario's default SLA" (pass ``None`` to solve unconstrained).
DEFAULT_SLA = object()


@dataclass
class ScenarioBundle:
    """One constructed instance of a scenario (catalog, workload, estimator).

    ``objects`` are the placeable objects of the catalog; ``estimator`` is
    ready to use, and :meth:`fresh_estimator` builds an independent twin for
    callers that need isolated estimator state per experimental arm (the
    scaling benchmarks' bitwise scalar-vs-batch comparisons).  Scenario
    conventions that the context layer should inherit -- profiling mode, the
    pruned single-baseline profiling of the TPC-C studies, a default SLA --
    travel with the bundle so ``bundle.context()`` does the right thing
    without per-call-site re-encoding.
    """

    name: str
    catalog: object
    workload: object
    estimator: object
    objects: List[DatabaseObject]
    #: Scenario-fixed storage system (``None``: pick per call via ``box=``).
    system: Optional[StorageSystem] = None
    #: Default relative SLA of the scenario's figure (overridable per context).
    sla: Optional[RelativeSLA] = None
    profile_mode: str = "estimate"
    single_baseline_profile: bool = False
    estimator_factory: Optional[Callable[[], object]] = field(default=None, repr=False)
    #: Scenario-specific extras (hot-group names, drift generators, ...).
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def fresh_estimator(self):
        """An independent estimator with the scenario's exact configuration."""
        if self.estimator_factory is None:
            raise ConfigurationError(
                f"scenario {self.name!r} does not provide an estimator factory"
            )
        return self.estimator_factory()

    def objects_named(self, names: Sequence[str]) -> List[DatabaseObject]:
        """The subset of the bundle's objects with the given names (in bundle order)."""
        wanted = set(names)
        return [obj for obj in self.objects if obj.name in wanted]

    def get_system(
        self,
        box: str = "Box 1",
        capacity_limits_gb: Optional[Mapping[str, float]] = None,
    ) -> StorageSystem:
        """The scenario's fixed system, or a paper box built on demand."""
        if self.system is not None and capacity_limits_gb is None:
            return self.system
        if self.system is not None:
            return self.system.with_capacity_limits(capacity_limits_gb)
        return box_system(box, capacity_limits_gb)

    # ------------------------------------------------------------------
    def context(
        self,
        *,
        system: Optional[StorageSystem] = None,
        box: str = "Box 1",
        capacity_limits_gb: Optional[Mapping[str, float]] = None,
        objects: Optional[Sequence[DatabaseObject]] = None,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = DEFAULT_SLA,
        constraint_mode: str = "estimate",
        cost_override: Optional[Callable[[Layout], float]] = None,
        profiles: Optional[WorkloadProfileSet] = None,
        estimate_cache: Optional[QueryEstimateCache] = None,
        estimator=None,
    ) -> EvaluationContext:
        """An :class:`EvaluationContext` over this bundle.

        The storage system comes from ``system`` (explicit), the scenario's
        fixed system, or ``box``/``capacity_limits_gb``; the SLA defaults to
        the scenario's own (pass ``sla=None`` to solve unconstrained).
        ``estimator`` substitutes an alternative estimator (e.g. a
        :meth:`fresh_estimator` twin for isolated arms).  Everything else
        (profiling conventions, the shared estimate cache) is inherited from
        the bundle.
        """
        chosen_system = (
            system if system is not None else self.get_system(box, capacity_limits_gb)
        )
        return EvaluationContext.build(
            objects=self.objects if objects is None else objects,
            system=chosen_system,
            estimator=self.estimator if estimator is None else estimator,
            workload=self.workload,
            sla=self.sla if sla is DEFAULT_SLA else sla,
            constraint_mode=constraint_mode,
            cost_override=cost_override,
            profile_mode=self.profile_mode,
            single_baseline_profile=self.single_baseline_profile,
            profiles=profiles,
            estimate_cache=estimate_cache,
        )


@dataclass(frozen=True)
class Scenario:
    """A named, parameterised recipe for a :class:`ScenarioBundle`.

    The descriptive fields (``workload``, ``system``, ``constraint``,
    ``figure``) drive the registry table in EXPERIMENTS.md and ``describe``;
    ``defaults`` are the builder keyword arguments a plain ``build()`` uses,
    individually overridable per call.
    """

    name: str
    description: str
    workload: str
    system: str
    constraint: str
    figure: str
    builder: Callable[..., ScenarioBundle] = field(repr=False, default=None)
    defaults: Mapping[str, object] = field(default_factory=dict)

    def build(self, **overrides) -> ScenarioBundle:
        """Construct the scenario, applying parameter overrides."""
        params = dict(self.defaults)
        unknown = sorted(set(overrides) - set(params))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} has no parameters {unknown}; "
                f"known: {sorted(params)}"
            )
        params.update(overrides)
        bundle = self.builder(**params)
        return bundle


# ---------------------------------------------------------------------------
# The registry proper
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Register a scenario under its name (later registrations override)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ConfigurationError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def build(name: str, **overrides) -> ScenarioBundle:
    """Shorthand for ``get(name).build(**overrides)``."""
    return get(name).build(**overrides)


def describe() -> str:
    """The registry as a fixed-width table (name, workload, system, figure)."""
    from repro.experiments.reporting import format_table

    rows = [
        [scenario.name, scenario.workload, scenario.system, scenario.constraint,
         scenario.figure]
        for scenario in (_REGISTRY[name] for name in scenario_names())
    ]
    return format_table(["Scenario", "Workload", "System", "Constraint", "Figure"], rows)
