"""Named experiment scenarios for the solver protocol.

``repro.scenarios`` maps stable names (``tpch_original``, ``tpch_modified``,
``tpch_es_subset``, ``tpcc_fig8``, ``fig9_tpcc``, ``synthetic_*``,
``tpch_drift_crossfade``) to fully-built experiment configurations, so that
every figure driver, benchmark and example constructs its workloads through
one registry instead of hand-wiring catalogs, estimators and SLAs:

>>> from repro import scenarios
>>> from repro.core import DOTSolver
>>> bundle = scenarios.build("tpch_original", scale_factor=2.0, repetitions=1)
>>> result = DOTSolver().solve(bundle.context(box="Box 1"))
>>> result.layout.name
'DOT'

See :mod:`repro.scenarios.registry` for the layering (recipe -> bundle ->
evaluation context) and :mod:`repro.scenarios.builtin` for the definitions.
"""

from repro.scenarios.registry import (
    Scenario,
    ScenarioBundle,
    box_system,
    build,
    describe,
    get,
    register,
    scenario_names,
)
from repro.scenarios import builtin  # noqa: F401  (registers the built-in scenarios)
from repro.scenarios.builtin import synthetic_scaling_workload

__all__ = [
    "Scenario",
    "ScenarioBundle",
    "box_system",
    "build",
    "builtin",
    "describe",
    "get",
    "register",
    "scenario_names",
    "synthetic_scaling_workload",
]
