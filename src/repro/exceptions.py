"""Exception hierarchy for the storage-provisioning reproduction.

All errors raised by :mod:`repro` derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A storage class, device, or box configuration is invalid.

    Raised for problems such as non-positive capacities, unknown device
    names, or RAID arrays built from zero member devices.
    """


class UnknownObjectError(ReproError, KeyError):
    """A database object referenced by name does not exist in the catalog."""


class UnknownStorageClassError(ReproError, KeyError):
    """A storage class referenced by name is not part of the storage system."""


class CapacityError(ReproError):
    """A layout assigns more bytes to a storage class than it can hold."""

    def __init__(self, storage_class: str, used_gb: float, capacity_gb: float):
        self.storage_class = storage_class
        self.used_gb = used_gb
        self.capacity_gb = capacity_gb
        super().__init__(
            f"storage class {storage_class!r} over capacity: "
            f"{used_gb:.2f} GB assigned, {capacity_gb:.2f} GB available"
        )


class InfeasibleLayoutError(ReproError):
    """No layout satisfying both capacity and SLA constraints was found.

    The optimizer raises this when the search completes without a single
    feasible candidate; the caller is expected to relax the performance
    constraint (as the paper's refinement loop in Figure 2 does) and retry.
    """


class ProfileError(ReproError):
    """A workload profile is missing or inconsistent with the request."""


class PlanningError(ReproError):
    """The query optimizer could not produce a physical plan for a query."""


class WorkloadError(ReproError):
    """A workload definition is malformed (e.g. empty query list)."""


class SLAError(ReproError):
    """A performance constraint is malformed or cannot be resolved."""
