"""Exception hierarchy for the storage-provisioning reproduction.

All errors raised by :mod:`repro` derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A storage class, device, or box configuration is invalid.

    Raised for problems such as non-positive capacities, unknown device
    names, or RAID arrays built from zero member devices.
    """


class UnknownObjectError(ReproError, KeyError):
    """A database object referenced by name does not exist in the catalog."""


class UnknownStorageClassError(ReproError, KeyError):
    """A storage class referenced by name is not part of the storage system."""


class CapacityError(ReproError):
    """A layout assigns more bytes to a storage class than it can hold."""

    def __init__(self, storage_class: str, used_gb: float, capacity_gb: float):
        self.storage_class = storage_class
        self.used_gb = used_gb
        self.capacity_gb = capacity_gb
        super().__init__(
            f"storage class {storage_class!r} over capacity: "
            f"{used_gb:.2f} GB assigned, {capacity_gb:.2f} GB available"
        )


class InfeasibleLayoutError(ReproError):
    """No layout satisfying both capacity and SLA constraints was found.

    The optimizer raises this when the search completes without a single
    feasible candidate; the caller is expected to relax the performance
    constraint (as the paper's refinement loop in Figure 2 does) and retry.
    """


class SolverTimeoutError(ReproError):
    """A solver overran its hard wall-clock deadline.

    Raised by search layers that cannot degrade in place (the parallel
    enumeration engine terminates its pool, checkpoints and raises); the
    solver layer catches it and downgrades to a partial-but-feasible result
    with :attr:`~repro.core.solver.SolveStats.degraded` set.  ``progress``
    carries whatever partial state the search accumulated (a
    :class:`~repro.core.parallel_search.SearchProgress` for the parallel
    engine, ``None`` elsewhere).
    """

    def __init__(self, message: str, elapsed_s: float = 0.0, progress=None):
        self.elapsed_s = elapsed_s
        self.progress = progress
        super().__init__(message)


class ShardFailureError(ReproError):
    """An enumeration shard kept failing after its bounded retries.

    ``shard_id`` and ``attempts`` identify the shard and how often it was
    tried; the original worker exception travels as ``__cause__``.
    """

    def __init__(self, message: str, shard_id: int = -1, attempts: int = 0):
        self.shard_id = shard_id
        self.attempts = attempts
        super().__init__(message)


class CheckpointCorruptionError(ReproError):
    """A persisted checkpoint failed its integrity checks.

    Raised instead of a bare ``json`` traceback when a checkpoint file is
    truncated, garbled, or fails its payload checksum; ``path`` names the
    offending file so the caller can quarantine it and redo the work.
    """

    def __init__(self, message: str, path=None):
        self.path = path
        super().__init__(message if path is None else f"{message} (checkpoint: {path})")


class StoreSchemaError(ReproError):
    """A results store was written under an incompatible schema version.

    Distinct from :class:`CheckpointCorruptionError` (a damaged file): the
    file is a healthy SQLite database, but its recorded ``schema_version``
    does not match what this code writes -- re-running the experiments into
    a fresh store is the only safe migration.
    """

    def __init__(self, message: str, path=None, found=None, expected=None):
        self.path = path
        self.found = found
        self.expected = expected
        super().__init__(message if path is None else f"{message} (store: {path})")


class TelemetryGapError(ReproError, ValueError):
    """Telemetry needed for a decision is missing or unusable.

    Subclasses :class:`ValueError` for backward compatibility with callers
    that guarded the monitor's historical ``ValueError``.
    """


class ProfileError(ReproError):
    """A workload profile is missing or inconsistent with the request."""


class PlanningError(ReproError):
    """The query optimizer could not produce a physical plan for a query."""


class WorkloadError(ReproError):
    """A workload definition is malformed (e.g. empty query list)."""


class SLAError(ReproError):
    """A performance constraint is malformed or cannot be resolved."""


class AdmissionRejectedError(ReproError):
    """The advisor service refused to accept a unit of tenant work.

    Raised by the service's public submission API when admission control
    sheds the request -- the bounded work queue is full, the service is
    draining, or the tenant is over budget (see the
    :class:`TenantBudgetExceededError` subclass for that case).  ``reason``
    carries the shed reason exactly as it is counted in the ``service.shed``
    metrics, so callers can branch on it without parsing the message.
    """

    def __init__(self, message: str, tenant_id: str = "", reason: str = "rejected"):
        self.tenant_id = tenant_id
        self.reason = reason
        super().__init__(message)


class TenantBudgetExceededError(AdmissionRejectedError):
    """A tenant exhausted its configured wall-clock budget.

    Admission control stops scheduling further epochs for the tenant once
    its accumulated solve time crosses the budget; the tenant's deployed
    layout stays served, only re-provisioning work is shed.
    """

    def __init__(self, message: str, tenant_id: str = "",
                 used_s: float = 0.0, budget_s: float = 0.0):
        super().__init__(message, tenant_id=tenant_id, reason="budget_exhausted")
        self.used_s = used_s
        self.budget_s = budget_s


class ServiceShutdownError(ReproError):
    """An operation was attempted on a stopped (or stopping) advisor service.

    Raised when work is submitted after :meth:`~repro.service.AdvisorService.
    shutdown`, and by service entry points once the daemon has drained.
    """
