"""Page-level size arithmetic for tables and B+-tree indexes."""

from __future__ import annotations

import math

from repro.units import PAGE_SIZE_BYTES

#: Fraction of each heap page actually holding tuples (fill factor).
DEFAULT_HEAP_FILL_FACTOR = 0.90

#: Fraction of each B+-tree leaf page holding entries.
DEFAULT_LEAF_FILL_FACTOR = 0.70

#: Fan-out assumed for interior B+-tree nodes when estimating tree height.
DEFAULT_INTERIOR_FANOUT = 250


def heap_pages(row_count: float, row_width_bytes: float,
               fill_factor: float = DEFAULT_HEAP_FILL_FACTOR,
               page_size_bytes: int = PAGE_SIZE_BYTES) -> int:
    """Number of heap pages needed for ``row_count`` rows of the given width."""
    if row_count <= 0:
        return 0
    rows_per_page = max(1.0, (page_size_bytes * fill_factor) / max(row_width_bytes, 1.0))
    return int(math.ceil(row_count / rows_per_page))


def leaf_pages(entry_count: float, entry_width_bytes: float,
               fill_factor: float = DEFAULT_LEAF_FILL_FACTOR,
               page_size_bytes: int = PAGE_SIZE_BYTES) -> int:
    """Number of B+-tree leaf pages for ``entry_count`` entries."""
    if entry_count <= 0:
        return 0
    entries_per_page = max(1.0, (page_size_bytes * fill_factor) / max(entry_width_bytes, 1.0))
    return int(math.ceil(entry_count / entries_per_page))


def btree_height(num_leaf_pages: int, fanout: int = DEFAULT_INTERIOR_FANOUT) -> int:
    """Number of non-leaf levels above the leaves (root counted, leaves not).

    A one-leaf tree has height 1 (just the root/leaf); each extra level
    multiplies addressable leaves by ``fanout``.
    """
    if num_leaf_pages <= 1:
        return 1
    return 1 + int(math.ceil(math.log(num_leaf_pages, fanout)))


def index_total_pages(num_leaf_pages: int, fanout: int = DEFAULT_INTERIOR_FANOUT) -> int:
    """Total pages in the index: leaves plus interior nodes."""
    if num_leaf_pages <= 0:
        return 0
    total = num_leaf_pages
    level = num_leaf_pages
    while level > 1:
        level = int(math.ceil(level / fanout))
        total += level
    return total
