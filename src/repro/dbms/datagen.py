"""Synthetic database generation helpers.

There is no real data in the reproduction; "generating" a database means
populating a :class:`~repro.dbms.catalog.DatabaseCatalog` with tables, indexes
and row-count-derived statistics.  The TPC-H and TPC-C schema builders in
:mod:`repro.workloads` use these helpers, as do the tests and examples that
need small ad-hoc databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.schema import Column, ColumnType, Index, Table
from repro.objects import DatabaseObject, ObjectKind


@dataclass(frozen=True)
class SyntheticTableSpec:
    """Specification of one synthetic table for :func:`build_synthetic_catalog`."""

    name: str
    row_count: float
    row_width_bytes: int = 100
    with_primary_index: bool = True
    secondary_indexes: int = 0


def generic_table(name: str, row_width_bytes: int) -> Table:
    """Build a table whose columns pad out to roughly the requested row width."""
    columns = [Column("id", ColumnType.BIGINT)]
    remaining = max(row_width_bytes - 8, 0)
    payload_index = 0
    while remaining > 0:
        width = min(remaining, 64)
        columns.append(Column(f"payload_{payload_index}", ColumnType.VARCHAR, width))
        remaining -= width
        payload_index += 1
    return Table(name=name, columns=tuple(columns))


def build_synthetic_catalog(
    specs: Sequence[SyntheticTableSpec],
    name: str = "synthetic",
    with_log: bool = False,
    log_size_gb: float = 1.0,
    with_temp: bool = False,
    temp_size_gb: float = 2.0,
) -> DatabaseCatalog:
    """Create a catalog containing the requested synthetic tables and indexes."""
    catalog = DatabaseCatalog(name=name)
    for spec in specs:
        table = generic_table(spec.name, spec.row_width_bytes)
        catalog.add_table(table, spec.row_count)
        if spec.with_primary_index:
            catalog.add_index(
                Index(
                    name=f"{spec.name}_pkey",
                    table=spec.name,
                    columns=("id",),
                    unique=True,
                    primary=True,
                )
            )
        for secondary in range(spec.secondary_indexes):
            catalog.add_index(
                Index(
                    name=f"i_{spec.name}_{secondary}",
                    table=spec.name,
                    columns=(f"payload_{min(secondary, 0)}",),
                )
            )
    if with_log:
        catalog.add_object(
            DatabaseObject(name="wal_log", size_gb=log_size_gb, kind=ObjectKind.LOG)
        )
    if with_temp:
        catalog.add_object(
            DatabaseObject(name="temp_space", size_gb=temp_size_gb, kind=ObjectKind.TEMP)
        )
    return catalog


def random_table_specs(
    num_tables: int,
    total_rows: float = 1e7,
    seed: Optional[int] = 7,
    skew: float = 1.0,
) -> Tuple[SyntheticTableSpec, ...]:
    """Generate table specs whose sizes follow a Zipf-like distribution.

    Useful for property-based and stress tests that need databases with a mix
    of large fact tables and small dimension tables.
    """
    if num_tables < 1:
        raise ValueError("num_tables must be >= 1")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_tables + 1, dtype=float)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    rows = np.maximum((weights * total_rows).astype(int), 10)
    widths = rng.integers(60, 300, size=num_tables)
    specs = []
    for position in range(num_tables):
        specs.append(
            SyntheticTableSpec(
                name=f"t{position}",
                row_count=float(rows[position]),
                row_width_bytes=int(widths[position]),
                with_primary_index=True,
                secondary_indexes=int(rng.integers(0, 2)),
            )
        )
    return tuple(specs)
