"""Closed-loop concurrency / throughput model for OLTP workloads.

The paper evaluates TPC-C with 300 concurrent database connections and a
throughput metric (New-Order transactions per minute).  The reproduction uses
classic operational-analysis bounds to turn per-transaction service demands
into system throughput:

* each of the ``c`` client threads runs transactions back-to-back, so the
  *population bound* is ``X <= c / R`` where ``R`` is one transaction's
  response time (estimated under concurrency ``c``);
* every storage class ``j`` is a serial resource, so the *bottleneck bound*
  is ``X <= 1 / B_j`` where ``B_j`` is the transaction's busy time on that
  class;
* the achieved throughput is the tighter of the two bounds, optionally scaled
  by an efficiency factor to account for lock/latch interference.

Because the per-I/O latencies already come from the concurrency-300
calibration column of Table 1, device-level queueing effects are folded into
``R`` and ``B_j`` and do not need to be modelled again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.units import MINUTES_PER_HOUR, SECONDS_PER_MINUTE


@dataclass(frozen=True)
class ThroughputEstimate:
    """Throughput prediction for one transaction profile."""

    transactions_per_second: float
    response_time_ms: float
    bottleneck_class: str
    bottleneck_busy_ms: float
    population_bound_tps: float
    bottleneck_bound_tps: float

    @property
    def transactions_per_minute(self) -> float:
        """Transactions per minute (the units of tpmC)."""
        return self.transactions_per_second * SECONDS_PER_MINUTE

    @property
    def transactions_per_hour(self) -> float:
        """Transactions per hour (the units of the paper's T(L, W))."""
        return self.transactions_per_minute * MINUTES_PER_HOUR


class ClosedLoopModel:
    """Operational-analysis throughput model for a closed system of clients."""

    def __init__(self, concurrency: int = 300, efficiency: float = 1.0):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        self.concurrency = concurrency
        self.efficiency = efficiency

    def estimate(
        self,
        response_time_ms: float,
        busy_time_by_class_ms: Mapping[str, float],
        cpu_time_ms: float = 0.0,
    ) -> ThroughputEstimate:
        """Estimate throughput for one "average" transaction.

        Parameters
        ----------
        response_time_ms:
            Estimated response time of one transaction at this concurrency
            (I/O plus CPU).
        busy_time_by_class_ms:
            Device busy time the transaction induces on each storage class.
        cpu_time_ms:
            CPU demand per transaction; treated as one more (highly parallel)
            resource so CPU-bound workloads do not report infinite throughput.
        """
        if response_time_ms <= 0:
            raise ValueError("response time must be positive")
        population_bound = self.concurrency / (response_time_ms / 1000.0)

        bottleneck_class = "CPU"
        bottleneck_busy = cpu_time_ms / 8.0  # assume 8 cores as in the paper's server
        for class_name, busy_ms in busy_time_by_class_ms.items():
            if busy_ms > bottleneck_busy:
                bottleneck_class = class_name
                bottleneck_busy = busy_ms
        if bottleneck_busy <= 0:
            bottleneck_bound = population_bound
        else:
            bottleneck_bound = 1000.0 / bottleneck_busy

        achieved = min(population_bound, bottleneck_bound) * self.efficiency
        return ThroughputEstimate(
            transactions_per_second=achieved,
            response_time_ms=response_time_ms,
            bottleneck_class=bottleneck_class,
            bottleneck_busy_ms=bottleneck_busy,
            population_bound_tps=population_bound,
            bottleneck_bound_tps=bottleneck_bound,
        )
