"""The storage-aware cost-based query optimizer.

For every query and candidate data placement the optimizer chooses:

* the access path of each scanned table (sequential scan vs B+-tree index
  scan), and
* the algorithm of each join step (hash join vs indexed nested-loop join),

by costing the alternatives with the placement-specific I/O latencies of
:class:`~repro.dbms.cost_model.CostModel`.  This reproduces the central
interaction the paper builds DOT around: moving a table or index to a
different storage class can flip the cheapest plan, which in turn changes the
number and type of I/Os issued against every object in the same group.

Plan construction walks the query's left-deep join pipeline greedily (each
step picks its locally cheapest alternative), which mirrors how the paper's
PostgreSQL-based estimates respond to layout changes while keeping the cost
of evaluating thousands of candidate layouts negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.cost_model import CostModel, CostParameters
from repro.dbms.plan import PlanNode, QueryPlan
from repro.dbms.query import Query, TableAccess, WriteOp
from repro.exceptions import PlanningError
from repro.storage.io_profile import IOType
from repro.storage.storage_class import StorageClass


@dataclass
class CacheStats:
    """Hit/miss/size accounting of the optimizer's plan cache.

    The searches (ES, DOT, the batch evaluator) re-plan the same queries
    under thousands of placements; because the cache key only covers the
    objects a query actually references, moving an *unrelated* object must
    produce a hit.  These counters make that observable and are the basis of
    the cache regression tests.
    """

    hits: int = 0
    misses: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.size = 0


@dataclass
class _Candidate:
    """A costed sub-plan alternative."""

    node: PlanNode
    io_time_ms: float
    cpu_time_ms: float
    rows_out: float

    @property
    def total_time_ms(self) -> float:
        return self.io_time_ms + self.cpu_time_ms


class QueryOptimizer:
    """Chooses physical plans under a specific data placement."""

    def __init__(
        self,
        catalog: DatabaseCatalog,
        parameters: Optional[CostParameters] = None,
        temp_object: Optional[str] = None,
    ):
        self.catalog = catalog
        self.parameters = parameters or CostParameters()
        #: Name of the temporary-space object used for sort/hash spills, if
        #: the database registers one and the placement covers it.
        self.temp_object = temp_object
        self._plan_cache: Dict[tuple, QueryPlan] = {}
        self.cache_stats = CacheStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(
        self,
        query: Query,
        placement: Mapping[str, StorageClass],
        concurrency: int = 1,
        use_cache: bool = True,
    ) -> QueryPlan:
        """Produce the cheapest plan for ``query`` under ``placement``."""
        cache_key = None
        if use_cache:
            cache_key = self._cache_key(query, placement, concurrency)
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                self.cache_stats.hits += 1
                return cached
            self.cache_stats.misses += 1

        cost_model = CostModel(placement, concurrency=concurrency, parameters=self.parameters)
        plan = self._build_plan(query, cost_model)
        if cache_key is not None:
            self._plan_cache[cache_key] = plan
            self.cache_stats.size = len(self._plan_cache)
        return plan

    def clear_cache(self) -> None:
        """Drop all cached plans (placements or statistics changed)."""
        self._plan_cache.clear()
        self.cache_stats.size = 0

    def plan_table(self) -> Dict[tuple, QueryPlan]:
        """A snapshot of the plan cache keyed by (query, concurrency, touched
        placements), for introspection and debugging of search runs."""
        return dict(self._plan_cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cache_key(
        self, query: Query, placement: Mapping[str, StorageClass], concurrency: int
    ) -> tuple:
        touched = []
        for name in query.referenced_objects:
            storage_class = placement.get(name)
            touched.append((name, storage_class.name if storage_class else None))
        return (query.name, concurrency, tuple(touched))

    def _build_plan(self, query: Query, cost_model: CostModel) -> QueryPlan:
        access_paths: Dict[str, str] = {}
        join_algorithms = []

        if query.accesses:
            current = self._best_access_path(query.accesses[0], cost_model)
            access_paths[query.accesses[0].table] = current.node.operator
            for position in range(1, len(query.accesses)):
                access = query.accesses[position]
                join = query.join_for(position)
                if join is None:
                    # Independent access (e.g. an uncorrelated subquery): cost it
                    # and keep the pipeline cardinality unchanged.
                    extra = self._best_access_path(access, cost_model)
                    access_paths[access.table] = extra.node.operator
                    current = _Candidate(
                        node=PlanNode(
                            operator="Append",
                            rows_out=current.rows_out,
                            children=[current.node, extra.node],
                        ),
                        io_time_ms=current.io_time_ms + extra.io_time_ms,
                        cpu_time_ms=current.cpu_time_ms + extra.cpu_time_ms,
                        rows_out=current.rows_out,
                    )
                    continue
                current, algorithm, inner_path = self._best_join(
                    current, access, join.rows_per_outer, join.inner_index, cost_model
                )
                join_algorithms.append(algorithm)
                if inner_path is not None:
                    access_paths[access.table] = inner_path
        else:
            current = _Candidate(node=PlanNode(operator="Result", rows_out=0.0),
                                 io_time_ms=0.0, cpu_time_ms=0.0, rows_out=0.0)

        # Post-join processing: sort and aggregation.
        if query.sort_rows > 0:
            current = self._add_sort(current, query.sort_rows, cost_model)
        if query.aggregate_rows > 0:
            current = self._add_aggregate(current, query.aggregate_rows, cost_model)

        # Writes (inserts / keyed updates) including index maintenance.
        for write in query.writes:
            current = self._add_write(current, write, cost_model)

        root = current.node
        plan = QueryPlan(
            query_name=query.name,
            root=root,
            io_time_ms=current.io_time_ms,
            cpu_time_ms=current.cpu_time_ms,
            access_paths=access_paths,
            join_algorithms=tuple(join_algorithms),
        )
        return plan

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def _seq_scan(self, access: TableAccess, cost_model: CostModel) -> _Candidate:
        stats = self.catalog.table_stats(access.table)
        repeat = max(access.repeat, 0.0)
        io_counts = {access.table: {IOType.SEQ_READ: float(stats.pages) * repeat}}
        io_time = cost_model.io_time_for_counts(io_counts)
        cpu_time = cost_model.scan_cpu_ms(stats.row_count) * repeat
        rows_out = stats.row_count * access.selectivity * repeat
        node = PlanNode(
            operator="SeqScan",
            target=access.table,
            rows_out=rows_out,
            io_counts=io_counts,
            cpu_ms=cpu_time,
            detail=f"selectivity={access.selectivity:.4g}",
        )
        return _Candidate(node=node, io_time_ms=io_time, cpu_time_ms=cpu_time, rows_out=rows_out)

    def _index_scan(self, access: TableAccess, cost_model: CostModel) -> Optional[_Candidate]:
        if access.index is None:
            return None
        if not self.catalog.has_object(access.index):
            raise PlanningError(
                f"query references index {access.index!r} which is not in the catalog"
            )
        table_stats = self.catalog.table_stats(access.table)
        index_stats = self.catalog.index_stats(access.index)
        repeat = max(access.repeat, 0.0)
        matching_rows = table_stats.row_count * access.selectivity

        # Index I/O: one descent through the interior levels plus the leaf
        # pages covering the matching range.
        matching_leaves = max(1.0, math.ceil(matching_rows / max(index_stats.entries_per_leaf, 1.0)))
        descent_levels = self.parameters.descent_io_levels(index_stats.height)
        index_reads = (descent_levels + float(matching_leaves)) * repeat

        # Heap I/O: for shuffled (unclustered) heaps every matching row is a
        # separate random heap-page fetch; for clustered accesses adjacent
        # rows share pages.  Both are capped by the table's page count.
        if access.clustered:
            heap_fetches = math.ceil(matching_rows / max(table_stats.rows_per_page, 1.0))
        else:
            heap_fetches = matching_rows
        heap_reads = min(float(heap_fetches), float(table_stats.pages)) * repeat
        heap_reads *= 1.0 - self.parameters.heap_refetch_discount

        io_counts = {
            access.index: {IOType.RAND_READ: index_reads},
            access.table: {IOType.RAND_READ: heap_reads},
        }
        io_time = cost_model.io_time_for_counts(io_counts)
        cpu_time = (
            cost_model.index_probe_cpu_ms(repeat, index_stats.height)
            + cost_model.scan_cpu_ms(matching_rows * repeat)
        )
        node = PlanNode(
            operator="IndexScan",
            target=access.table,
            rows_out=matching_rows * repeat,
            io_counts=io_counts,
            cpu_ms=cpu_time,
            detail=f"index={access.index}, selectivity={access.selectivity:.4g}",
        )
        return _Candidate(node=node, io_time_ms=io_time, cpu_time_ms=cpu_time,
                          rows_out=matching_rows * repeat)

    def _best_access_path(self, access: TableAccess, cost_model: CostModel) -> _Candidate:
        seq = self._seq_scan(access, cost_model)
        index = self._index_scan(access, cost_model)
        if index is not None and index.total_time_ms < seq.total_time_ms:
            return index
        return seq

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _hash_join(
        self,
        outer: _Candidate,
        access: TableAccess,
        rows_per_outer: float,
        cost_model: CostModel,
    ) -> Tuple[_Candidate, str]:
        inner = self._best_access_path(access, cost_model)
        rows_out = outer.rows_out * rows_per_outer
        cpu_time = cost_model.hash_cpu_ms(build_rows=inner.rows_out, probe_rows=outer.rows_out)

        io_counts: Dict[str, Dict[IOType, float]] = {}
        io_time = 0.0
        spill_detail = ""
        # Spill the build side to temporary space when it exceeds work_mem.
        table_stats = self.catalog.table_stats(access.table)
        build_bytes = inner.rows_out * table_stats.row_width_bytes
        if self.temp_object and build_bytes > cost_model.work_mem_bytes():
            from repro.units import PAGE_SIZE_BYTES

            spill_pages = build_bytes / PAGE_SIZE_BYTES
            io_counts[self.temp_object] = {
                IOType.SEQ_WRITE: spill_pages,
                IOType.SEQ_READ: spill_pages,
            }
            io_time = cost_model.io_time_for_counts(io_counts)
            spill_detail = ", spills to temp"

        node = PlanNode(
            operator="HashJoin",
            target=access.table,
            rows_out=rows_out,
            io_counts=io_counts,
            cpu_ms=cpu_time,
            children=[outer.node, inner.node],
            detail=f"build={access.table}{spill_detail}",
        )
        candidate = _Candidate(
            node=node,
            io_time_ms=outer.io_time_ms + inner.io_time_ms + io_time,
            cpu_time_ms=outer.cpu_time_ms + inner.cpu_time_ms + cpu_time,
            rows_out=rows_out,
        )
        return candidate, inner.node.operator

    def _index_nl_join(
        self,
        outer: _Candidate,
        access: TableAccess,
        rows_per_outer: float,
        inner_index: str,
        cost_model: CostModel,
    ) -> Optional[_Candidate]:
        if not self.catalog.has_object(inner_index):
            raise PlanningError(
                f"join references index {inner_index!r} which is not in the catalog"
            )
        table_stats = self.catalog.table_stats(access.table)
        index_stats = self.catalog.index_stats(inner_index)

        probes = outer.rows_out

        # Each probe descends the B+-tree (paying I/O only for the uncached
        # lower levels) and fetches the matching heap rows (one random read
        # each, since the heap is unclustered).  The inner access's own filter
        # selectivity is already folded into rows_per_outer by the workload
        # definition.
        index_reads = probes * self.parameters.descent_io_levels(index_stats.height)
        heap_reads = probes * max(rows_per_outer, 0.0)
        # A probe with no match still pays the descent but fetches nothing.
        rows_out = outer.rows_out * rows_per_outer

        io_counts = {
            inner_index: {IOType.RAND_READ: index_reads},
            access.table: {IOType.RAND_READ: heap_reads},
        }
        io_time = cost_model.io_time_for_counts(io_counts)
        cpu_time = (
            cost_model.index_probe_cpu_ms(probes, index_stats.height)
            + cost_model.scan_cpu_ms(rows_out)
        )
        node = PlanNode(
            operator="IndexNLJoin",
            target=access.table,
            rows_out=rows_out,
            io_counts=io_counts,
            cpu_ms=cpu_time,
            children=[outer.node],
            detail=f"index={inner_index}, probes={probes:.0f}",
        )
        return _Candidate(
            node=node,
            io_time_ms=outer.io_time_ms + io_time,
            cpu_time_ms=outer.cpu_time_ms + cpu_time,
            rows_out=rows_out,
        )

    def _best_join(
        self,
        outer: _Candidate,
        access: TableAccess,
        rows_per_outer: float,
        inner_index: Optional[str],
        cost_model: CostModel,
    ) -> Tuple[_Candidate, str, Optional[str]]:
        hash_candidate, inner_path = self._hash_join(outer, access, rows_per_outer, cost_model)
        best = hash_candidate
        algorithm = "HashJoin"
        chosen_inner_path: Optional[str] = inner_path

        if inner_index is not None:
            nlj_candidate = self._index_nl_join(
                outer, access, rows_per_outer, inner_index, cost_model
            )
            if nlj_candidate is not None and nlj_candidate.total_time_ms < best.total_time_ms:
                best = nlj_candidate
                algorithm = "IndexNLJoin"
                chosen_inner_path = None  # inner table is probed, not scanned
        return best, algorithm, chosen_inner_path

    # ------------------------------------------------------------------
    # Post-processing operators
    # ------------------------------------------------------------------
    def _add_sort(self, current: _Candidate, sort_rows: float, cost_model: CostModel) -> _Candidate:
        cpu_time = cost_model.sort_cpu_ms(sort_rows)
        io_counts: Dict[str, Dict[IOType, float]] = {}
        io_time = 0.0
        # External sort spills when the sorted rows exceed work_mem (assume
        # 64 bytes per sort row for keys + pointers).
        sort_bytes = sort_rows * 64.0
        if self.temp_object and sort_bytes > cost_model.work_mem_bytes():
            from repro.units import PAGE_SIZE_BYTES

            spill_pages = sort_bytes / PAGE_SIZE_BYTES
            io_counts[self.temp_object] = {
                IOType.SEQ_WRITE: spill_pages,
                IOType.SEQ_READ: spill_pages,
            }
            io_time = cost_model.io_time_for_counts(io_counts)
        node = PlanNode(
            operator="Sort",
            rows_out=current.rows_out,
            io_counts=io_counts,
            cpu_ms=cpu_time,
            children=[current.node],
            detail=f"rows={sort_rows:.0f}",
        )
        return _Candidate(
            node=node,
            io_time_ms=current.io_time_ms + io_time,
            cpu_time_ms=current.cpu_time_ms + cpu_time,
            rows_out=current.rows_out,
        )

    def _add_aggregate(
        self, current: _Candidate, aggregate_rows: float, cost_model: CostModel
    ) -> _Candidate:
        cpu_time = cost_model.aggregate_cpu_ms(aggregate_rows)
        node = PlanNode(
            operator="Aggregate",
            rows_out=min(current.rows_out, aggregate_rows),
            cpu_ms=cpu_time,
            children=[current.node],
            detail=f"input rows={aggregate_rows:.0f}",
        )
        return _Candidate(
            node=node,
            io_time_ms=current.io_time_ms,
            cpu_time_ms=current.cpu_time_ms + cpu_time,
            rows_out=node.rows_out,
        )

    def _add_write(self, current: _Candidate, write: WriteOp, cost_model: CostModel) -> _Candidate:
        stats = self.catalog.table_stats(write.table)
        io_counts: Dict[str, Dict[IOType, float]] = {}

        if write.sequential:
            # Append-style insert: rows go to the end of the heap; index
            # entries land on (mostly random) leaf pages.
            io_counts[write.table] = {IOType.SEQ_WRITE: write.rows}
            operator = "Insert"
        else:
            # Keyed update: locate the rows (random reads via the primary
            # index when one exists), then write them back in place.  Rows
            # that are physically adjacent share heap pages.
            if write.clustered:
                pages_touched = math.ceil(write.rows / max(stats.rows_per_page, 1.0))
            else:
                pages_touched = write.rows
            primary = self.catalog.primary_index(write.table)
            lookup_reads = float(pages_touched)
            if primary is not None:
                index_stats = self.catalog.index_stats(primary.name)
                io_counts[primary.name] = {
                    IOType.RAND_READ: write.rows
                    * self.parameters.descent_io_levels(index_stats.height)
                }
            io_counts.setdefault(write.table, {})
            io_counts[write.table][IOType.RAND_READ] = lookup_reads
            io_counts[write.table][IOType.RAND_WRITE] = float(pages_touched)
            operator = "Update"

        # Index maintenance: entries for append-style inserts arrive in key
        # order (and are absorbed by the buffer/WAL), so they behave like
        # sequential writes; in-place updates dirty arbitrary leaf pages.
        maintenance_io = IOType.SEQ_WRITE if write.sequential else IOType.RAND_WRITE
        for index_name in write.indexes:
            if not self.catalog.has_object(index_name):
                raise PlanningError(
                    f"write references index {index_name!r} which is not in the catalog"
                )
            bucket = io_counts.setdefault(index_name, {})
            bucket[maintenance_io] = bucket.get(maintenance_io, 0.0) + write.rows

        io_time = cost_model.io_time_for_counts(io_counts)
        cpu_time = cost_model.scan_cpu_ms(write.rows)
        node = PlanNode(
            operator=operator,
            target=write.table,
            rows_out=write.rows,
            io_counts=io_counts,
            cpu_ms=cpu_time,
            children=[current.node] if current.node.operator != "Result" else [],
            detail=f"rows={write.rows:.0f}",
        )
        return _Candidate(
            node=node,
            io_time_ms=current.io_time_ms + io_time,
            cpu_time_ms=current.cpu_time_ms + cpu_time,
            rows_out=current.rows_out,
        )
