"""The database catalog: schema plus statistics plus placeable objects.

A :class:`DatabaseCatalog` records every table and index of the simulated
database together with its derived statistics, and can emit the list of
:class:`~repro.objects.DatabaseObject` instances (with sizes in GB) that the
DOT layout optimizer places onto storage classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dbms.schema import Index, Table
from repro.dbms.statistics import IndexStats, TableStats
from repro.exceptions import ConfigurationError, UnknownObjectError
from repro.objects import DatabaseObject, ObjectKind


class DatabaseCatalog:
    """Holds tables, indexes and their statistics for one simulated database."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._table_stats: Dict[str, TableStats] = {}
        self._indexes: Dict[str, Index] = {}
        self._index_stats: Dict[str, IndexStats] = {}
        self._extra_objects: Dict[str, DatabaseObject] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_table(self, table: Table, row_count: float) -> TableStats:
        """Register a table and derive its statistics from the row count."""
        if table.name in self._tables:
            raise ConfigurationError(f"table {table.name!r} already registered")
        stats = TableStats.from_schema(table, row_count)
        self._tables[table.name] = table
        self._table_stats[table.name] = stats
        return stats

    def add_index(self, index: Index) -> IndexStats:
        """Register an index on a previously registered table."""
        if index.name in self._indexes:
            raise ConfigurationError(f"index {index.name!r} already registered")
        if index.table not in self._tables:
            raise UnknownObjectError(index.table)
        table = self._tables[index.table]
        row_count = self._table_stats[index.table].row_count
        stats = IndexStats.from_schema(index, table, row_count)
        self._indexes[index.name] = index
        self._index_stats[index.name] = stats
        return stats

    def add_object(self, obj: DatabaseObject) -> DatabaseObject:
        """Register an extra placeable object (log, temp space)."""
        if obj.name in self._tables or obj.name in self._indexes or obj.name in self._extra_objects:
            raise ConfigurationError(f"object {obj.name!r} already registered")
        self._extra_objects[obj.name] = obj
        return obj

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> Tuple[str, ...]:
        """Registered table names in registration order."""
        return tuple(self._tables)

    @property
    def index_names(self) -> Tuple[str, ...]:
        """Registered index names in registration order."""
        return tuple(self._indexes)

    def table(self, name: str) -> Table:
        """Look up a table definition."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def table_stats(self, name: str) -> TableStats:
        """Look up table statistics."""
        try:
            return self._table_stats[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def index(self, name: str) -> Index:
        """Look up an index definition."""
        try:
            return self._indexes[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def index_stats(self, name: str) -> IndexStats:
        """Look up index statistics."""
        try:
            return self._index_stats[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def has_object(self, name: str) -> bool:
        """True if the name refers to any registered object."""
        return name in self._tables or name in self._indexes or name in self._extra_objects

    def indexes_on(self, table_name: str) -> List[Index]:
        """All indexes registered on a table, primary key first."""
        found = [index for index in self._indexes.values() if index.table == table_name]
        found.sort(key=lambda index: (not index.primary, index.name))
        return found

    def primary_index(self, table_name: str) -> Optional[Index]:
        """The table's primary-key index if one is registered."""
        for index in self.indexes_on(table_name):
            if index.primary:
                return index
        return None

    def object_size_gb(self, name: str) -> float:
        """Size in GB of any registered object."""
        if name in self._table_stats:
            return self._table_stats[name].size_gb
        if name in self._index_stats:
            return self._index_stats[name].size_gb
        if name in self._extra_objects:
            return self._extra_objects[name].size_gb
        raise UnknownObjectError(name)

    def total_size_gb(self) -> float:
        """Total database size in GB."""
        return sum(self.object_size_gb(obj.name) for obj in self.database_objects())

    # ------------------------------------------------------------------
    # Export to the placement layer
    # ------------------------------------------------------------------
    def database_objects(self) -> List[DatabaseObject]:
        """All placeable objects (tables, indexes, extras) with their sizes."""
        objects: List[DatabaseObject] = []
        for name in self._tables:
            objects.append(
                DatabaseObject(
                    name=name,
                    size_gb=self._table_stats[name].size_gb,
                    kind=ObjectKind.TABLE,
                    table=name,
                )
            )
        for name, index in self._indexes.items():
            objects.append(
                DatabaseObject(
                    name=name,
                    size_gb=self._index_stats[name].size_gb,
                    kind=ObjectKind.INDEX,
                    table=index.table,
                )
            )
        objects.extend(self._extra_objects.values())
        return objects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatabaseCatalog({self.name!r}, tables={len(self._tables)}, "
            f"indexes={len(self._indexes)}, size={self.total_size_gb():.1f} GB)"
        )
