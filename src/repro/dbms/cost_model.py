"""Storage-aware cost estimation (the paper's extended query optimizer, Section 3.5).

A stock PostgreSQL cost model assumes a single random/sequential page cost for
the whole database.  The paper's extension makes plan costs depend on *which
storage class each object lives on*; this module provides exactly that: given
a placement (object name -> storage class) and a degree of concurrency, it
converts per-object I/O counts into milliseconds using each class's calibrated
I/O profile, and adds CPU time from per-row constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import UnknownObjectError
from repro.storage.io_profile import IOType
from repro.storage.storage_class import StorageClass


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model.

    The CPU constants play the role of PostgreSQL's ``cpu_tuple_cost`` /
    ``cpu_operator_cost`` but are expressed directly in milliseconds so the
    optimizer's output is a response-time estimate (Section 3.5: I/O time
    plus CPU time).
    """

    #: CPU time to process one row through a scan or filter (ms).
    cpu_tuple_cost_ms: float = 0.0002
    #: CPU time to apply one operator/aggregate step to a row (ms).
    cpu_operator_cost_ms: float = 0.00005
    #: CPU time to insert one row into a hash table or probe it (ms).
    cpu_hash_cost_ms: float = 0.0003
    #: CPU time per row per comparison level while sorting (ms).
    cpu_sort_cost_ms: float = 0.0004
    #: CPU time to navigate one B+-tree level (ms).
    cpu_index_descent_cost_ms: float = 0.0005
    #: Memory available to a single sort/hash before spilling (MB).
    work_mem_mb: float = 256.0
    #: Share of an unclustered index scan's heap fetches that hit a page
    #: already fetched by the same scan (simple correlation discount).
    heap_refetch_discount: float = 0.0
    #: Number of upper B+-tree levels assumed resident in memory: descents
    #: only pay I/O for the levels below them (root and first interior levels
    #: of any actively used index are effectively always cached).
    cached_index_levels: int = 2

    def __post_init__(self) -> None:
        for field_name in (
            "cpu_tuple_cost_ms",
            "cpu_operator_cost_ms",
            "cpu_hash_cost_ms",
            "cpu_sort_cost_ms",
            "cpu_index_descent_cost_ms",
            "work_mem_mb",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")
        if not 0.0 <= self.heap_refetch_discount < 1.0:
            raise ValueError("heap_refetch_discount must be in [0, 1)")
        if self.cached_index_levels < 0:
            raise ValueError("cached_index_levels cannot be negative")

    def descent_io_levels(self, height: int) -> float:
        """Number of index levels a descent actually reads from storage."""
        return float(max(height - self.cached_index_levels, 1))


class CostModel:
    """Converts I/O counts and row counts into time under a given placement.

    Parameters
    ----------
    placement:
        Mapping from object name to the :class:`StorageClass` it is placed on.
        Every object a plan touches must be present.
    concurrency:
        Degree of concurrency used to pick effective per-I/O latencies.
    parameters:
        CPU and memory constants.
    """

    def __init__(
        self,
        placement: Mapping[str, StorageClass],
        concurrency: int = 1,
        parameters: Optional[CostParameters] = None,
    ):
        if concurrency < 1:
            raise ValueError("degree of concurrency must be >= 1")
        self.placement = dict(placement)
        self.concurrency = concurrency
        self.parameters = parameters or CostParameters()
        # Cache of per-(object, io_type) latencies; placements are immutable
        # for the lifetime of a CostModel instance.
        self._latency_cache: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def storage_class_for(self, object_name: str) -> StorageClass:
        """The storage class an object is placed on."""
        try:
            return self.placement[object_name]
        except KeyError:
            raise UnknownObjectError(
                f"object {object_name!r} has no storage assignment in this placement"
            ) from None

    def io_latency_ms(self, object_name: str, io_type: IOType) -> float:
        """Effective per-I/O latency for one object at this concurrency."""
        key = (object_name, io_type)
        cached = self._latency_cache.get(key)
        if cached is None:
            storage_class = self.storage_class_for(object_name)
            cached = storage_class.service_time_ms(io_type, self.concurrency)
            self._latency_cache[key] = cached
        return cached

    def io_time_ms(self, object_name: str, io_type: IOType, count: float) -> float:
        """Time to perform ``count`` I/Os of ``io_type`` against one object."""
        if count <= 0:
            return 0.0
        return count * self.io_latency_ms(object_name, io_type)

    def io_time_for_counts(self, io_counts: Mapping[str, Mapping[IOType, float]]) -> float:
        """Total I/O time for a per-object I/O count structure (paper Eq. 1)."""
        total = 0.0
        for object_name, by_type in io_counts.items():
            for io_type, count in by_type.items():
                total += self.io_time_ms(object_name, io_type, count)
        return total

    def io_time_by_class(
        self, io_counts: Mapping[str, Mapping[IOType, float]]
    ) -> Dict[str, float]:
        """I/O busy time per storage class (used by the throughput model)."""
        busy: Dict[str, float] = {}
        for object_name, by_type in io_counts.items():
            class_name = self.storage_class_for(object_name).name
            for io_type, count in by_type.items():
                busy[class_name] = busy.get(class_name, 0.0) + self.io_time_ms(
                    object_name, io_type, count
                )
        return busy

    # ------------------------------------------------------------------
    # CPU helpers
    # ------------------------------------------------------------------
    def scan_cpu_ms(self, rows: float) -> float:
        """CPU time to scan/filter ``rows`` rows."""
        return rows * self.parameters.cpu_tuple_cost_ms

    def hash_cpu_ms(self, build_rows: float, probe_rows: float) -> float:
        """CPU time to build a hash table and probe it."""
        return (build_rows + probe_rows) * self.parameters.cpu_hash_cost_ms

    def sort_cpu_ms(self, rows: float) -> float:
        """CPU time to sort ``rows`` rows (n log2 n comparisons)."""
        if rows <= 1:
            return 0.0
        import math

        return rows * math.log2(rows) * self.parameters.cpu_sort_cost_ms

    def aggregate_cpu_ms(self, rows: float) -> float:
        """CPU time to aggregate ``rows`` input rows."""
        return rows * self.parameters.cpu_operator_cost_ms

    def index_probe_cpu_ms(self, probes: float, height: int) -> float:
        """CPU time for ``probes`` B+-tree descents of the given height."""
        return probes * height * self.parameters.cpu_index_descent_cost_ms

    def work_mem_bytes(self) -> float:
        """Available working memory per operator in bytes."""
        return self.parameters.work_mem_mb * 1024.0 * 1024.0
