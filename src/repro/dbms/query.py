"""Logical query specifications.

The reproduction does not parse SQL; queries are expressed as structured
specifications that capture exactly what the storage-aware optimizer needs to
choose between access paths and join algorithms:

* which tables are accessed and how selective the per-table predicates are,
* whether an index could serve the predicate (and which one),
* the left-deep join order with per-join cardinality factors and the index
  available on each inner table (for indexed nested-loop joins),
* the rows written (inserts/updates) and which indexes those writes touch,
* post-join work (sorts / aggregation) that contributes CPU time.

Each of the paper's TPC-H templates and TPC-C transactions is encoded as one
:class:`Query` in :mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.dbms.statistics import clamp_selectivity
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class TableAccess:
    """One base-table access with its predicate selectivity.

    Attributes
    ----------
    table:
        Name of the accessed table.
    selectivity:
        Fraction of the table's rows surviving the predicates applied at this
        access (1.0 = full scan with no filter).
    index:
        Name of an index that could serve the predicate, or ``None`` if no
        index is applicable (forcing a sequential scan).
    key_lookup:
        True when the predicate is an equality (or tight range) on the leading
        index column, so an index scan touches only the matching entries.
    repeat:
        Number of times the access is executed within one query execution
        (e.g. the ten item lookups of a TPC-C New-Order transaction, or a
        correlated subquery evaluated per outer row).  Each repetition pays
        the full access cost.
    clustered:
        True when the matching rows are physically adjacent (stored in key
        order), so an index scan touches roughly ``rows / rows_per_page``
        heap pages instead of one page per row.  The paper's TPC-H heaps are
        deliberately shuffled (never clustered); TPC-C order lines of one
        order are adjacent.
    """

    table: str
    selectivity: float = 1.0
    index: Optional[str] = None
    key_lookup: bool = False
    repeat: float = 1.0
    clustered: bool = False

    def __post_init__(self) -> None:
        if not self.table:
            raise WorkloadError("table access must name a table")
        if self.repeat < 0:
            raise WorkloadError("repeat count cannot be negative")
        object.__setattr__(self, "selectivity", clamp_selectivity(self.selectivity))


@dataclass(frozen=True)
class JoinSpec:
    """One step of the left-deep join pipeline.

    The join combines the running intermediate result (the "outer") with the
    table of the access at position ``inner_position`` in
    :attr:`Query.accesses`.

    Attributes
    ----------
    inner_position:
        Index into ``Query.accesses`` of the inner relation.
    rows_per_outer:
        Average number of matching inner rows per outer row after applying
        the join predicate and the inner access's own filters (this is the
        cardinality multiplier of the join step).
    inner_index:
        Index on the inner join key, required for an indexed nested-loop
        join; ``None`` disables INLJ for this step.
    """

    inner_position: int
    rows_per_outer: float = 1.0
    inner_index: Optional[str] = None

    def __post_init__(self) -> None:
        if self.inner_position < 1:
            raise WorkloadError("inner_position must reference a non-first access")
        if self.rows_per_outer < 0:
            raise WorkloadError("rows_per_outer cannot be negative")


@dataclass(frozen=True)
class WriteOp:
    """Rows written by the query (inserts, updates or deletes).

    Attributes
    ----------
    table:
        Target table.
    rows:
        Number of rows written.
    sequential:
        True for append-style inserts (sequential writes), False for in-place
        keyed updates (random writes preceded by random reads).
    indexes:
        Names of indexes that must also be maintained by the write.
    clustered:
        True when the written rows are physically adjacent, so an in-place
        update dirties roughly ``rows / rows_per_page`` heap pages instead of
        one page per row.
    """

    table: str
    rows: float
    sequential: bool = False
    indexes: Tuple[str, ...] = ()
    clustered: bool = False

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise WorkloadError("write row count cannot be negative")


@dataclass(frozen=True)
class Query:
    """A logical query: accesses, joins, writes and post-processing."""

    name: str
    accesses: Tuple[TableAccess, ...] = ()
    joins: Tuple[JoinSpec, ...] = ()
    writes: Tuple[WriteOp, ...] = ()
    sort_rows: float = 0.0
    aggregate_rows: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("query must have a name")
        if not self.accesses and not self.writes:
            raise WorkloadError(f"query {self.name!r} accesses no tables and writes nothing")
        positions = [join.inner_position for join in self.joins]
        if len(set(positions)) != len(positions):
            raise WorkloadError(f"query {self.name!r} joins the same access twice")
        for join in self.joins:
            if join.inner_position >= len(self.accesses):
                raise WorkloadError(
                    f"query {self.name!r}: join references access #{join.inner_position} "
                    f"but only {len(self.accesses)} accesses are defined"
                )
        if self.sort_rows < 0 or self.aggregate_rows < 0:
            raise WorkloadError(f"query {self.name!r} has negative sort/aggregate rows")

    # ------------------------------------------------------------------
    @property
    def tables(self) -> Tuple[str, ...]:
        """All distinct tables referenced (reads and writes), in order."""
        seen = []
        for access in self.accesses:
            if access.table not in seen:
                seen.append(access.table)
        for write in self.writes:
            if write.table not in seen:
                seen.append(write.table)
        return tuple(seen)

    @property
    def referenced_objects(self) -> Tuple[str, ...]:
        """All object names (tables and candidate indexes) the query may touch."""
        seen = []
        for access in self.accesses:
            for name in (access.table, access.index):
                if name and name not in seen:
                    seen.append(name)
        for join in self.joins:
            if join.inner_index and join.inner_index not in seen:
                seen.append(join.inner_index)
        for write in self.writes:
            if write.table not in seen:
                seen.append(write.table)
            for index_name in write.indexes:
                if index_name not in seen:
                    seen.append(index_name)
        return tuple(seen)

    @property
    def is_read_only(self) -> bool:
        """True if the query performs no writes."""
        return not self.writes

    def join_for(self, position: int) -> Optional[JoinSpec]:
        """The join spec whose inner relation is the access at ``position``."""
        for join in self.joins:
            if join.inner_position == position:
                return join
        return None


def make_scan_query(name: str, table: str, selectivity: float = 1.0,
                    index: Optional[str] = None, key_lookup: bool = False) -> Query:
    """Convenience builder for single-table read queries (used in tests)."""
    return Query(
        name=name,
        accesses=(TableAccess(table=table, selectivity=selectivity, index=index,
                              key_lookup=key_lookup),),
    )
