"""Table and index statistics used by the query optimizer.

Statistics are derived from row counts and schema widths (there is no real
data in the simulator), mirroring what ``ANALYZE`` would provide: page
counts, row counts, index entry counts, leaf page counts and B+-tree heights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms import pages as page_math
from repro.dbms.schema import Index, Table
from repro.exceptions import ConfigurationError
from repro.units import pages_to_gb


@dataclass(frozen=True)
class TableStats:
    """Physical statistics of one base table."""

    table: str
    row_count: float
    row_width_bytes: float
    pages: int

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ConfigurationError(f"table {self.table!r} cannot have negative row count")
        if self.pages < 0:
            raise ConfigurationError(f"table {self.table!r} cannot have negative page count")

    @property
    def size_gb(self) -> float:
        """On-disk size in GB."""
        return pages_to_gb(self.pages)

    @property
    def rows_per_page(self) -> float:
        """Average number of rows per heap page."""
        if self.pages == 0:
            return 0.0
        return self.row_count / self.pages

    @classmethod
    def from_schema(cls, table: Table, row_count: float) -> "TableStats":
        """Derive statistics from a table definition and a row count."""
        width = table.row_width_bytes
        return cls(
            table=table.name,
            row_count=row_count,
            row_width_bytes=width,
            pages=page_math.heap_pages(row_count, width),
        )


@dataclass(frozen=True)
class IndexStats:
    """Physical statistics of one B+-tree index."""

    index: str
    table: str
    entry_count: float
    entry_width_bytes: float
    leaf_pages: int
    height: int
    total_pages: int

    def __post_init__(self) -> None:
        if self.entry_count < 0:
            raise ConfigurationError(f"index {self.index!r} cannot have negative entries")
        if self.height < 1 and self.leaf_pages > 0:
            raise ConfigurationError(f"index {self.index!r} height must be >= 1")

    @property
    def size_gb(self) -> float:
        """On-disk size in GB."""
        return pages_to_gb(self.total_pages)

    @property
    def entries_per_leaf(self) -> float:
        """Average number of entries per leaf page."""
        if self.leaf_pages == 0:
            return 0.0
        return self.entry_count / self.leaf_pages

    @classmethod
    def from_schema(cls, index: Index, table: Table, row_count: float) -> "IndexStats":
        """Derive statistics from an index definition and the table's row count."""
        entry_width = index.key_width_bytes(table)
        leaves = page_math.leaf_pages(row_count, entry_width)
        return cls(
            index=index.name,
            table=index.table,
            entry_count=row_count,
            entry_width_bytes=entry_width,
            leaf_pages=leaves,
            height=page_math.btree_height(leaves),
            total_pages=page_math.index_total_pages(leaves),
        )


def clamp_selectivity(selectivity: float) -> float:
    """Clamp a selectivity estimate into ``[0, 1]``."""
    if selectivity < 0.0:
        return 0.0
    if selectivity > 1.0:
        return 1.0
    return selectivity
