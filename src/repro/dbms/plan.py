"""Physical query plans.

A plan is a tree of :class:`PlanNode` operators.  Each node records the I/O
it performs against each database object (by I/O type) and its CPU cost; the
:class:`QueryPlan` wrapper aggregates those numbers so DOT can read off the
per-object I/O profile and the optimizer's estimated response time, exactly
like the paper reads PostgreSQL's ``EXPLAIN`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.storage.io_profile import IOType

#: Per-object I/O counts: ``{object_name: {io_type: count}}``.
ObjectIOCounts = Dict[str, Dict[IOType, float]]


def merge_io_counts(target: ObjectIOCounts, source: Mapping[str, Mapping[IOType, float]]) -> None:
    """Accumulate ``source`` into ``target`` in place."""
    for object_name, by_type in source.items():
        bucket = target.setdefault(object_name, {})
        for io_type, count in by_type.items():
            bucket[io_type] = bucket.get(io_type, 0.0) + count


def scale_io_counts(counts: Mapping[str, Mapping[IOType, float]], factor: float) -> ObjectIOCounts:
    """Return a copy of ``counts`` with every count multiplied by ``factor``."""
    return {
        object_name: {io_type: count * factor for io_type, count in by_type.items()}
        for object_name, by_type in counts.items()
    }


def total_io_count(counts: Mapping[str, Mapping[IOType, float]]) -> float:
    """Total number of I/O operations across all objects and types."""
    return sum(sum(by_type.values()) for by_type in counts.values())


@dataclass
class PlanNode:
    """One physical operator in a query plan.

    Attributes
    ----------
    operator:
        Operator name, e.g. ``"SeqScan"``, ``"IndexScan"``, ``"HashJoin"``,
        ``"IndexNLJoin"``, ``"Sort"``, ``"Aggregate"``, ``"Insert"``,
        ``"Update"``.
    target:
        The main object the operator works on (table/index name), if any.
    rows_out:
        Estimated output cardinality.
    io_counts:
        I/O performed directly by this operator (children excluded).
    cpu_ms:
        CPU time consumed directly by this operator (children excluded).
    children:
        Input operators.
    detail:
        Free-form annotation used when rendering the plan.
    """

    operator: str
    target: Optional[str] = None
    rows_out: float = 0.0
    io_counts: ObjectIOCounts = field(default_factory=dict)
    cpu_ms: float = 0.0
    children: List["PlanNode"] = field(default_factory=list)
    detail: str = ""

    # ------------------------------------------------------------------
    def total_io_counts(self) -> ObjectIOCounts:
        """Aggregate I/O of this node and all descendants."""
        totals: ObjectIOCounts = {}
        merge_io_counts(totals, self.io_counts)
        for child in self.children:
            merge_io_counts(totals, child.total_io_counts())
        return totals

    def total_cpu_ms(self) -> float:
        """Aggregate CPU time of this node and all descendants."""
        return self.cpu_ms + sum(child.total_cpu_ms() for child in self.children)

    def walk(self) -> Iterable["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        """Render the subtree as an ``EXPLAIN``-style indented listing."""
        target = f" on {self.target}" if self.target else ""
        detail = f" ({self.detail})" if self.detail else ""
        line = f"{'  ' * indent}-> {self.operator}{target}  rows={self.rows_out:.0f}{detail}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """A complete plan for one query under one data placement."""

    query_name: str
    root: PlanNode
    io_time_ms: float = 0.0
    cpu_time_ms: float = 0.0
    access_paths: Dict[str, str] = field(default_factory=dict)
    join_algorithms: Tuple[str, ...] = ()

    @property
    def estimated_time_ms(self) -> float:
        """Optimizer's response-time estimate: I/O time plus CPU time."""
        return self.io_time_ms + self.cpu_time_ms

    @property
    def io_by_object(self) -> ObjectIOCounts:
        """Per-object, per-I/O-type counts for the whole plan (``chi`` in the paper)."""
        return self.root.total_io_counts()

    @property
    def total_io_operations(self) -> float:
        """Total I/O operations performed by the plan."""
        return total_io_count(self.io_by_object)

    def io_for(self, object_name: str) -> Dict[IOType, float]:
        """I/O counts against one object (empty dict if untouched)."""
        return dict(self.io_by_object.get(object_name, {}))

    def uses_index_nlj(self) -> bool:
        """True if any join in the plan is an indexed nested-loop join."""
        return any(algorithm == "IndexNLJoin" for algorithm in self.join_algorithms)

    def render(self) -> str:
        """Render the plan tree plus the cost summary."""
        header = (
            f"Plan for {self.query_name}: est. {self.estimated_time_ms:.2f} ms "
            f"(I/O {self.io_time_ms:.2f} ms, CPU {self.cpu_time_ms:.2f} ms)"
        )
        return header + "\n" + self.root.render()
