"""A simple buffer-pool model.

The paper's optimizer-based estimates deliberately ignore caching ("we do not
analyze the effect of cached data in the buffer pool"), but its *validation*
phase runs the workload for real, where the 4 GB PostgreSQL shared buffer does
absorb part of the read traffic.  This module provides a coarse model of that
effect for the simulated "test run": buffer space is allocated to objects
smallest-first (approximating an LRU that keeps hot, small objects such as
indexes and dimension tables resident) and the resident fraction of each
object's pages absorbs the corresponding fraction of its read I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.storage.io_profile import IOType


@dataclass(frozen=True)
class BufferPool:
    """Models a shared buffer of ``size_gb`` gigabytes.

    Parameters
    ----------
    size_gb:
        Buffer pool capacity.  ``0`` disables caching entirely.
    read_absorption:
        Upper bound on the fraction of read I/O the cache may absorb even for
        fully resident objects (leaves a cold-start / first-touch residue).
    """

    size_gb: float = 4.0
    read_absorption: float = 0.9

    def __post_init__(self) -> None:
        if self.size_gb < 0:
            raise ValueError("buffer pool size cannot be negative")
        if not 0.0 <= self.read_absorption <= 1.0:
            raise ValueError("read_absorption must be within [0, 1]")

    # ------------------------------------------------------------------
    def resident_fractions(self, object_sizes_gb: Mapping[str, float]) -> Dict[str, float]:
        """Fraction of each object resident in the buffer pool.

        Objects are admitted smallest-first until the buffer is full; the
        object that straddles the boundary is partially resident.
        """
        fractions = {name: 0.0 for name in object_sizes_gb}
        remaining = self.size_gb
        for name, size in sorted(object_sizes_gb.items(), key=lambda item: item[1]):
            if remaining <= 0:
                break
            if size <= 0:
                fractions[name] = 1.0
                continue
            if size <= remaining:
                fractions[name] = 1.0
                remaining -= size
            else:
                fractions[name] = remaining / size
                remaining = 0.0
        return fractions

    def absorb_reads(
        self,
        io_counts: Mapping[str, Mapping[IOType, float]],
        object_sizes_gb: Mapping[str, float],
    ) -> Dict[str, Dict[IOType, float]]:
        """Return I/O counts with cached read I/O removed.

        Write I/O is unaffected (dirty pages must eventually reach the
        device); read I/O against an object is reduced by
        ``resident_fraction * read_absorption``.
        """
        if self.size_gb == 0:
            return {obj: dict(by_type) for obj, by_type in io_counts.items()}
        sizes = {name: object_sizes_gb.get(name, 0.0) for name in io_counts}
        fractions = self.resident_fractions(sizes)
        adjusted: Dict[str, Dict[IOType, float]] = {}
        for object_name, by_type in io_counts.items():
            hit_fraction = fractions.get(object_name, 0.0) * self.read_absorption
            adjusted[object_name] = {}
            for io_type, count in by_type.items():
                if io_type.is_read:
                    adjusted[object_name][io_type] = count * (1.0 - hit_fraction)
                else:
                    adjusted[object_name][io_type] = count
        return adjusted
