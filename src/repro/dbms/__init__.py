"""Miniature DBMS substrate: catalog, statistics, storage-aware optimizer, executor.

The paper extends PostgreSQL's query optimizer so that plan costs reflect the
I/O profile of whichever storage class each object sits on, and uses the
optimizer's plan output (without executing queries) to estimate workload I/O
behaviour and response time.  Since the reproduction cannot ship PostgreSQL,
this package provides a small cost-based optimizer and execution simulator
with the same observable behaviour:

* plans are chosen per candidate data layout (sequential vs index scans,
  hash join vs indexed nested-loop join);
* every plan reports the number of I/Os of each type it performs against each
  database object -- the ``chi`` profile DOT consumes;
* an executor turns plans into simulated response times / throughput,
  optionally with buffer-pool effects and measurement noise, for DOT's
  validation ("test run") phase.
"""

from repro.dbms.schema import Column, ColumnType, Index, Table
from repro.dbms.statistics import IndexStats, TableStats
from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.query import JoinSpec, Query, TableAccess, WriteOp
from repro.dbms.plan import PlanNode, QueryPlan
from repro.dbms.cost_model import CostModel, CostParameters
from repro.dbms.optimizer import QueryOptimizer
from repro.dbms.buffer_pool import BufferPool
from repro.dbms.executor import ExecutionResult, WorkloadEstimator, WorkloadRunResult

__all__ = [
    "Column",
    "ColumnType",
    "Index",
    "Table",
    "IndexStats",
    "TableStats",
    "DatabaseCatalog",
    "JoinSpec",
    "Query",
    "TableAccess",
    "WriteOp",
    "PlanNode",
    "QueryPlan",
    "CostModel",
    "CostParameters",
    "QueryOptimizer",
    "BufferPool",
    "ExecutionResult",
    "WorkloadEstimator",
    "WorkloadRunResult",
]
