"""Relational schema definitions: columns, tables and indexes.

The schema layer is purely structural -- it knows column widths and which
indexes exist on which tables, but not how many rows a table holds (that is
the job of :mod:`repro.dbms.statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


class ColumnType(str, Enum):
    """Supported column types with default storage widths."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    CHAR = "char"
    VARCHAR = "varchar"
    DATE = "date"
    TEXT = "text"

    @property
    def default_width_bytes(self) -> int:
        """Typical on-disk width in bytes for the type."""
        return {
            ColumnType.INTEGER: 4,
            ColumnType.BIGINT: 8,
            ColumnType.DECIMAL: 8,
            ColumnType.CHAR: 1,
            ColumnType.VARCHAR: 16,
            ColumnType.DATE: 4,
            ColumnType.TEXT: 32,
        }[self]


@dataclass(frozen=True)
class Column:
    """A table column.

    ``width_bytes`` overrides the type's default width (used for CHAR(n) and
    VARCHAR(n) columns where the declared length matters).
    """

    name: str
    type: ColumnType = ColumnType.INTEGER
    width_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("column name must be non-empty")
        if self.width_bytes is not None and self.width_bytes <= 0:
            raise ConfigurationError(f"column {self.name!r} width must be positive")

    @property
    def storage_width_bytes(self) -> int:
        """Effective on-disk width."""
        if self.width_bytes is not None:
            return self.width_bytes
        return self.type.default_width_bytes


#: Per-row storage overhead (tuple header, item pointer), roughly PostgreSQL's.
ROW_OVERHEAD_BYTES = 28


@dataclass(frozen=True)
class Table:
    """A base table definition."""

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("table name must be non-empty")
        if not self.columns:
            raise ConfigurationError(f"table {self.name!r} must have at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"table {self.name!r} has duplicate column names")

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Names of the columns in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for candidate in self.columns:
            if candidate.name == name:
                return candidate
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    @property
    def row_width_bytes(self) -> int:
        """Estimated on-disk width of one row including per-row overhead."""
        return ROW_OVERHEAD_BYTES + sum(column.storage_width_bytes for column in self.columns)


#: Per-index-entry overhead (item pointer + alignment), roughly a B+-tree's.
INDEX_ENTRY_OVERHEAD_BYTES = 12


@dataclass(frozen=True)
class Index:
    """A (B+-tree) index on one or more columns of a table."""

    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False
    primary: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("index name must be non-empty")
        if not self.table:
            raise ConfigurationError(f"index {self.name!r} must reference a table")
        if not self.columns:
            raise ConfigurationError(f"index {self.name!r} must cover at least one column")

    def key_width_bytes(self, table: Table) -> int:
        """Width of one index entry given the owning table's column widths."""
        width = INDEX_ENTRY_OVERHEAD_BYTES
        for column_name in self.columns:
            width += table.column(column_name).storage_width_bytes
        return width


def make_table(name: str, columns: Sequence[tuple]) -> Table:
    """Convenience builder: ``make_table("t", [("id", ColumnType.INTEGER), ...])``.

    Each entry of ``columns`` is ``(name, type)`` or ``(name, type, width)``.
    """
    built = []
    for spec in columns:
        if len(spec) == 2:
            column_name, column_type = spec
            built.append(Column(column_name, column_type))
        elif len(spec) == 3:
            column_name, column_type, width = spec
            built.append(Column(column_name, column_type, width))
        else:
            raise ConfigurationError(f"bad column spec {spec!r}")
    return Table(name=name, columns=tuple(built))
