"""Workload estimation and simulated execution.

DOT needs two things from the DBMS substrate (paper Figure 2):

* **Optimizer estimates** -- for a candidate layout, how many I/Os of each
  type does the workload issue against each object, and what is the estimated
  response time / throughput?  (``estimateTOC`` in Procedure 1 and the
  profiling phase of Section 3.4, mode (a).)
* **Test runs** -- for the validation phase, a simulated "real" execution that
  may deviate from the estimates (buffer-pool hits, measurement noise) and
  yields actual I/O statistics.  (Section 3.4, mode (b).)

:class:`WorkloadEstimator` provides both, working from the storage-aware
optimizer's plans.  A DSS workload is a sequence of queries executed one
after another (response-time metric); an OLTP workload is a weighted
transaction mix executed by a closed population of clients (throughput
metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dbms.buffer_pool import BufferPool
from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.concurrency import ClosedLoopModel, ThroughputEstimate
from repro.dbms.cost_model import CostModel, CostParameters
from repro.dbms.optimizer import QueryOptimizer
from repro.dbms.plan import ObjectIOCounts, QueryPlan, merge_io_counts, scale_io_counts
from repro.dbms.query import Query
from repro.storage.io_profile import IOType
from repro.storage.storage_class import StorageClass
from repro.units import SECONDS_PER_HOUR


@dataclass
class ExecutionResult:
    """Outcome of estimating or simulating a single query."""

    query_name: str
    response_time_ms: float
    io_time_ms: float
    cpu_time_ms: float
    io_counts: ObjectIOCounts
    plan: Optional[QueryPlan] = None


@dataclass
class WorkloadRunResult:
    """Outcome of estimating or simulating a whole workload under one layout."""

    workload_name: str
    kind: str
    concurrency: int
    per_query_times_ms: List[Tuple[str, float]] = field(default_factory=list)
    io_by_object: ObjectIOCounts = field(default_factory=dict)
    busy_time_by_class_ms: Dict[str, float] = field(default_factory=dict)
    total_time_s: float = 0.0
    throughput: Optional[ThroughputEstimate] = None
    measured_transaction_fraction: float = 1.0

    # ------------------------------------------------------------------
    @property
    def total_time_hours(self) -> float:
        """Execution time of the workload in hours (``t(L, W)`` for DSS)."""
        return self.total_time_s / SECONDS_PER_HOUR

    @property
    def tasks_per_hour(self) -> float:
        """Throughput ``T(L, W)`` in tasks/hour.

        For DSS workloads a "task" is one full pass over the query stream;
        for OLTP workloads it is one measured transaction (e.g. New-Order).
        """
        if self.throughput is not None:
            return self.throughput.transactions_per_hour * self.measured_transaction_fraction
        if self.total_time_hours <= 0:
            return float("inf")
        return 1.0 / self.total_time_hours

    @property
    def transactions_per_minute(self) -> Optional[float]:
        """tpmC-style metric for OLTP workloads (measured transactions only)."""
        if self.throughput is None:
            return None
        return self.throughput.transactions_per_minute * self.measured_transaction_fraction

    def query_time_ms(self, query_name: str) -> float:
        """Response time of the first query with the given name."""
        for name, time_ms in self.per_query_times_ms:
            if name == query_name:
                return time_ms
        raise KeyError(query_name)

    def times_by_query(self) -> Dict[str, List[float]]:
        """All response times grouped by query name."""
        grouped: Dict[str, List[float]] = {}
        for name, time_ms in self.per_query_times_ms:
            grouped.setdefault(name, []).append(time_ms)
        return grouped


class WorkloadEstimator:
    """Estimates and simulates workloads on top of the storage-aware optimizer.

    Parameters
    ----------
    catalog:
        The database catalog (schema plus statistics).
    parameters:
        Cost-model constants.
    temp_object:
        Optional name of the temporary-space object used for spills.
    buffer_pool:
        Buffer pool applied in *test-run* mode (estimates ignore caching, as
        the paper's estimates do).
    noise:
        Coefficient of variation of the log-normal noise applied to simulated
        ("actual") query times.  Estimates are always noise-free.
    estimate_uses_buffer:
        Apply buffer-pool absorption to *estimates* as well.  The paper's
        TPC-H estimates ignore caching, but its TPC-C profiling comes from a
        test run whose I/O statistics already reflect the 4 GB shared buffer;
        setting this flag reproduces that behaviour for OLTP experiments.
    oltp_efficiency:
        Efficiency factor of the closed-loop throughput model (lock/latch
        interference at high concurrency).
    seed:
        Random seed for the test-run noise.
    """

    def __init__(
        self,
        catalog: DatabaseCatalog,
        parameters: Optional[CostParameters] = None,
        temp_object: Optional[str] = None,
        buffer_pool: Optional[BufferPool] = None,
        noise: float = 0.03,
        oltp_efficiency: float = 0.85,
        seed: Optional[int] = 2011,
        estimate_uses_buffer: bool = False,
    ):
        self.catalog = catalog
        self.parameters = parameters or CostParameters()
        self.optimizer = QueryOptimizer(catalog, self.parameters, temp_object=temp_object)
        self.buffer_pool = buffer_pool
        self.noise = noise
        self.estimate_uses_buffer = estimate_uses_buffer
        self.oltp_efficiency = oltp_efficiency
        self._rng = np.random.default_rng(seed)
        self._object_sizes: Dict[str, float] = {
            obj.name: obj.size_gb for obj in catalog.database_objects()
        }

    # ------------------------------------------------------------------
    # Placement signatures
    # ------------------------------------------------------------------
    def signature_objects(self, query: Query) -> Tuple[str, ...]:
        """Objects whose storage class can influence this query's estimate.

        This is the query's referenced objects (the optimizer's plan-cache
        key) plus the temporary-space object: spills pay I/O against temp, so
        its class matters even though no query references it directly.  Two
        placements agreeing on these objects produce identical estimates --
        the invariant the batch/incremental evaluators key their tables on.
        """
        names = list(query.referenced_objects)
        temp_object = self.optimizer.temp_object
        if temp_object and temp_object not in names:
            names.append(temp_object)
        return tuple(names)

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def estimate_query(
        self, query: Query, placement: Mapping[str, StorageClass], concurrency: int = 1
    ) -> ExecutionResult:
        """Optimizer estimate for one query under one placement."""
        plan = self.optimizer.plan(query, placement, concurrency=concurrency)
        io_counts = plan.io_by_object
        io_time_ms = plan.io_time_ms
        if self.estimate_uses_buffer and self.buffer_pool is not None:
            io_counts = self.buffer_pool.absorb_reads(io_counts, self._object_sizes)
            cost_model = CostModel(placement, concurrency=concurrency, parameters=self.parameters)
            io_time_ms = cost_model.io_time_for_counts(io_counts)
        return ExecutionResult(
            query_name=query.name,
            response_time_ms=io_time_ms + plan.cpu_time_ms,
            io_time_ms=io_time_ms,
            cpu_time_ms=plan.cpu_time_ms,
            io_counts=io_counts,
            plan=plan,
        )

    def simulate_query(
        self, query: Query, placement: Mapping[str, StorageClass], concurrency: int = 1
    ) -> ExecutionResult:
        """Simulated "actual" execution of one query (buffer pool + noise)."""
        plan = self.optimizer.plan(query, placement, concurrency=concurrency)
        io_counts = plan.io_by_object
        if self.buffer_pool is not None:
            io_counts = self.buffer_pool.absorb_reads(io_counts, self._object_sizes)
        cost_model = CostModel(placement, concurrency=concurrency, parameters=self.parameters)
        io_time_ms = cost_model.io_time_for_counts(io_counts)
        cpu_time_ms = plan.cpu_time_ms
        response = io_time_ms + cpu_time_ms
        if self.noise > 0:
            sigma = float(np.sqrt(np.log1p(self.noise**2)))
            response *= float(self._rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
        return ExecutionResult(
            query_name=query.name,
            response_time_ms=response,
            io_time_ms=io_time_ms,
            cpu_time_ms=cpu_time_ms,
            io_counts=io_counts,
            plan=plan,
        )

    # ------------------------------------------------------------------
    # Query streams (DSS)
    # ------------------------------------------------------------------
    def _run_stream(
        self,
        queries: Sequence[Query],
        placement: Mapping[str, StorageClass],
        concurrency: int,
        workload_name: str,
        simulate: bool,
    ) -> WorkloadRunResult:
        runner = self.simulate_query if simulate else self.estimate_query
        result = WorkloadRunResult(
            workload_name=workload_name, kind="dss", concurrency=concurrency
        )
        cost_model = CostModel(placement, concurrency=concurrency, parameters=self.parameters)
        total_ms = 0.0
        for query in queries:
            execution = runner(query, placement, concurrency)
            result.per_query_times_ms.append((query.name, execution.response_time_ms))
            merge_io_counts(result.io_by_object, execution.io_counts)
            total_ms += execution.response_time_ms
        result.total_time_s = total_ms / 1000.0
        result.busy_time_by_class_ms = cost_model.io_time_by_class(result.io_by_object)
        return result

    # ------------------------------------------------------------------
    # Transaction mixes (OLTP)
    # ------------------------------------------------------------------
    def _run_mix(
        self,
        mix: Sequence[Tuple[Query, float]],
        placement: Mapping[str, StorageClass],
        concurrency: int,
        workload_name: str,
        simulate: bool,
        measured_fraction: float,
        duration_s: float,
    ) -> WorkloadRunResult:
        runner = self.simulate_query if simulate else self.estimate_query
        total_weight = sum(weight for _, weight in mix)
        if total_weight <= 0:
            raise ValueError("transaction mix weights must sum to a positive value")
        cost_model = CostModel(placement, concurrency=concurrency, parameters=self.parameters)

        avg_io_counts: ObjectIOCounts = {}
        avg_response_ms = 0.0
        avg_cpu_ms = 0.0
        result = WorkloadRunResult(
            workload_name=workload_name,
            kind="oltp",
            concurrency=concurrency,
            measured_transaction_fraction=measured_fraction,
        )
        for query, weight in mix:
            share = weight / total_weight
            execution = runner(query, placement, concurrency)
            result.per_query_times_ms.append((query.name, execution.response_time_ms))
            merge_io_counts(result.io_by_object, scale_io_counts(execution.io_counts, share))
            avg_response_ms += share * execution.response_time_ms
            avg_cpu_ms += share * execution.cpu_time_ms

        busy_by_class = cost_model.io_time_by_class(result.io_by_object)
        model = ClosedLoopModel(concurrency=concurrency, efficiency=self.oltp_efficiency)
        result.throughput = model.estimate(
            response_time_ms=max(avg_response_ms, 1e-9),
            busy_time_by_class_ms=busy_by_class,
            cpu_time_ms=avg_cpu_ms,
        )
        result.busy_time_by_class_ms = busy_by_class
        result.total_time_s = duration_s
        return result

    # ------------------------------------------------------------------
    # Workload-level dispatch
    # ------------------------------------------------------------------
    def estimate_workload(self, workload, placement: Mapping[str, StorageClass]) -> WorkloadRunResult:
        """Optimizer-estimate a workload (no caching effects, no noise)."""
        return self._dispatch(workload, placement, simulate=False)

    def run_workload(self, workload, placement: Mapping[str, StorageClass]) -> WorkloadRunResult:
        """Simulate an "actual" run of a workload (buffer pool + noise)."""
        return self._dispatch(workload, placement, simulate=True)

    def _dispatch(self, workload, placement, simulate: bool) -> WorkloadRunResult:
        kind = getattr(workload, "kind", "dss")
        concurrency = getattr(workload, "concurrency", 1)
        name = getattr(workload, "name", "workload")
        if kind == "oltp":
            return self._run_mix(
                mix=workload.transaction_mix,
                placement=placement,
                concurrency=concurrency,
                workload_name=name,
                simulate=simulate,
                measured_fraction=getattr(workload, "measured_transaction_fraction", 1.0),
                duration_s=getattr(workload, "duration_s", 3600.0),
            )
        return self._run_stream(
            queries=list(workload.queries),
            placement=placement,
            concurrency=concurrency,
            workload_name=name,
            simulate=simulate,
        )
