"""repro: a reproduction of "Towards Cost-Effective Storage Provisioning for DBMSs".

The package implements the DOT storage-placement advisor (VLDB 2011) together
with every substrate its evaluation depends on: parametric storage device
models, a storage-aware query optimizer and execution simulator, TPC-H /
TPC-C style workload generators, SLA machinery, and the baselines the paper
compares against (simple layouts, the Object Advisor, exhaustive search).

Quickstart
----------
>>> from repro import storage, workloads
>>> from repro.core import ProvisioningAdvisor
>>> from repro.dbms import WorkloadEstimator
>>> from repro.sla import RelativeSLA
>>> catalog = workloads.tpch.build_catalog(scale_factor=1)
>>> workload = workloads.tpch.original_workload(scale_factor=1, repetitions=1)
>>> system = storage.catalog.box1()
>>> advisor = ProvisioningAdvisor(catalog.database_objects(), system,
...                               WorkloadEstimator(catalog))
>>> recommendation = advisor.recommend(workload, sla=RelativeSLA(0.5))
>>> recommendation.layout.name
'DOT'
"""

from repro import (
    core,
    dbms,
    experiments,
    obs,
    online,
    resilience,
    scenarios,
    sla,
    storage,
    workloads,
)
from repro.exceptions import (
    CapacityError,
    CheckpointCorruptionError,
    ConfigurationError,
    InfeasibleLayoutError,
    PlanningError,
    ProfileError,
    ReproError,
    ShardFailureError,
    SLAError,
    SolverTimeoutError,
    TelemetryGapError,
    UnknownObjectError,
    UnknownStorageClassError,
    WorkloadError,
)
from repro.objects import DatabaseObject, ObjectGroup, ObjectKind, group_objects

__version__ = "1.0.0"

__all__ = [
    "core",
    "dbms",
    "experiments",
    "obs",
    "online",
    "resilience",
    "scenarios",
    "sla",
    "storage",
    "workloads",
    "DatabaseObject",
    "ObjectGroup",
    "ObjectKind",
    "group_objects",
    "ReproError",
    "CheckpointCorruptionError",
    "ConfigurationError",
    "CapacityError",
    "InfeasibleLayoutError",
    "PlanningError",
    "ProfileError",
    "ShardFailureError",
    "SLAError",
    "SolverTimeoutError",
    "TelemetryGapError",
    "UnknownObjectError",
    "UnknownStorageClassError",
    "WorkloadError",
    "__version__",
]
